"""Tests for keys and value containers."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.factorgraph import Key, U, V, Values, X, Y, key
from repro.geometry import Pose


class TestKeys:
    def test_equality_and_hash(self):
        assert X(1) == Key("x", 1)
        assert hash(X(1)) == hash(Key("x", 1))
        assert X(1) != X(2)
        assert X(1) != Y(1)

    def test_helpers(self):
        assert str(X(3)) == "x3"
        assert str(Y(0)) == "y0"
        assert str(U(2)) == "u2"
        assert str(V(4)) == "v4"
        assert key("a", 7) == Key("a", 7)

    def test_ordering(self):
        assert sorted([X(2), X(1), Y(0)]) == [X(1), X(2), Y(0)]


class TestValues:
    def test_insert_and_at(self):
        v = Values()
        v.insert(X(0), Pose.identity(2))
        v.insert(Y(0), np.array([1.0, 2.0]))
        assert v.pose(X(0)).almost_equal(Pose.identity(2))
        assert np.allclose(v.vector(Y(0)), [1.0, 2.0])

    def test_double_insert_rejected(self):
        v = Values({X(0): np.zeros(3)})
        with pytest.raises(GraphError):
            v.insert(X(0), np.zeros(3))

    def test_update_requires_existing(self):
        v = Values()
        with pytest.raises(GraphError):
            v.update(X(0), np.zeros(3))

    def test_at_unknown_key(self):
        with pytest.raises(GraphError):
            Values().at(X(9))

    def test_typed_accessors_enforce_type(self):
        v = Values({X(0): Pose.identity(3), Y(0): np.zeros(3)})
        with pytest.raises(GraphError):
            v.vector(X(0))
        with pytest.raises(GraphError):
            v.pose(Y(0))

    def test_vector_values_must_be_1d(self):
        with pytest.raises(GraphError):
            Values({X(0): np.zeros((2, 2))})

    def test_dims(self):
        v = Values({X(0): Pose.identity(3), Y(0): np.zeros(2)})
        assert v.dim(X(0)) == 6
        assert v.dim(Y(0)) == 2
        assert v.total_dim() == 8

    def test_len_contains_iter(self):
        v = Values({X(0): np.zeros(1), X(1): np.zeros(1)})
        assert len(v) == 2
        assert X(0) in v and X(2) not in v
        assert set(v) == {X(0), X(1)}

    def test_copy_is_deep_for_vectors(self):
        v = Values({Y(0): np.array([1.0])})
        c = v.copy()
        c.vector(Y(0))[0] = 5.0
        assert v.vector(Y(0))[0] == 1.0

    def test_retract_and_local_roundtrip(self):
        v = Values({X(0): Pose.identity(3), Y(0): np.array([1.0, 2.0])})
        delta = {X(0): np.array([0.1, 0.0, 0.0, 1.0, 0.0, 0.0]),
                 Y(0): np.array([-1.0, 1.0])}
        moved = v.retract(delta)
        diff = v.local(moved)
        for k in delta:
            assert np.allclose(diff[k], delta[k], atol=1e-9)

    def test_retract_unknown_key(self):
        with pytest.raises(GraphError):
            Values().retract({X(0): np.zeros(3)})

    def test_local_requires_same_keys(self):
        a = Values({X(0): np.zeros(2)})
        b = Values({X(1): np.zeros(2)})
        with pytest.raises(GraphError):
            a.local(b)

    def test_local_pose_vs_vector_rejected(self):
        a = Values({X(0): Pose.identity(2)})
        b = Values()
        b._data = {X(0): np.zeros(3)}  # bypass coercion to force the branch
        with pytest.raises(GraphError):
            a.local(b)
