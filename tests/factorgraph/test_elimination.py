"""Tests for QR variable elimination and back substitution.

The load-bearing property: the sparse incremental elimination of Fig. 5/6
must produce the same solution as a dense least-squares solve of the
assembled system, for any ordering.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError, LinearizationError
from repro.factorgraph import (
    GaussianFactor,
    GaussianFactorGraph,
    X,
    Y,
    eliminate,
    eliminate_variable,
    min_degree_ordering,
    natural_ordering,
    solve,
)


def chain_graph(num_vars, dim=2, seed=0):
    """A well-posed odometry-style chain: prior on X0 plus between rows."""
    rng = np.random.default_rng(seed)
    factors = [
        GaussianFactor(
            [X(0)], {X(0): np.eye(dim)}, rng.standard_normal(dim)
        )
    ]
    for i in range(num_vars - 1):
        blocks = {
            X(i): -np.eye(dim) + 0.1 * rng.standard_normal((dim, dim)),
            X(i + 1): np.eye(dim),
        }
        factors.append(
            GaussianFactor([X(i), X(i + 1)], blocks, rng.standard_normal(dim))
        )
    return GaussianFactorGraph(factors)


def slam_graph(num_poses=4, num_landmarks=3, seed=1):
    """Poses in a chain plus landmark observations — a Fig. 4 style graph."""
    rng = np.random.default_rng(seed)
    g = chain_graph(num_poses, dim=3, seed=seed)
    for j in range(num_landmarks):
        for i in range(num_poses):
            if (i + j) % 2 == 0:
                blocks = {
                    X(i): rng.standard_normal((2, 3)),
                    Y(j): rng.standard_normal((2, 2))
                    + 2.0 * np.eye(2, 2),
                }
                g.add(
                    GaussianFactor(
                        [X(i), Y(j)], blocks, rng.standard_normal(2)
                    )
                )
    return g


class TestEliminateVariable:
    def test_single_factor_single_variable(self):
        a = np.array([[2.0, 0.0], [0.0, 4.0]])
        b = np.array([2.0, 8.0])
        f = GaussianFactor([X(0)], {X(0): a}, b)
        conditional, new_factor, record = eliminate_variable([f], X(0))
        assert new_factor is None
        assert record.rows == 2 and record.cols == 2
        sol = conditional.solve({})
        assert np.allclose(sol, [1.0, 2.0])

    def test_produces_marginal_on_separator(self):
        rng = np.random.default_rng(2)
        f = GaussianFactor(
            [X(0), X(1)],
            {X(0): rng.standard_normal((4, 2)), X(1): rng.standard_normal((4, 2))},
            rng.standard_normal(4),
        )
        conditional, new_factor, record = eliminate_variable([f], X(0))
        assert conditional.parent_keys() == [X(1)]
        assert new_factor is not None
        assert new_factor.keys == [X(1)]
        assert record.separator == (X(1),)

    def test_underconstrained_variable_rejected(self):
        f = GaussianFactor([X(0)], {X(0): np.ones((1, 3))}, np.zeros(1))
        with pytest.raises(LinearizationError):
            eliminate_variable([f], X(0))

    def test_no_factors_rejected(self):
        with pytest.raises(GraphError):
            eliminate_variable([], X(0))

    def test_record_density(self):
        f = GaussianFactor([X(0)], {X(0): np.eye(2)}, np.zeros(2))
        _, _, record = eliminate_variable([f], X(0))
        assert record.density == pytest.approx(1.0)


class TestEliminationMatchesDense:
    def test_chain_natural_order(self):
        g = chain_graph(6)
        dense = g.solve_dense()
        sparse, _ = solve(g, natural_ordering(g))
        for k in dense:
            assert np.allclose(sparse[k], dense[k], atol=1e-8)

    def test_chain_reverse_order(self):
        g = chain_graph(6)
        dense = g.solve_dense()
        sparse, _ = solve(g, list(reversed(natural_ordering(g))))
        for k in dense:
            assert np.allclose(sparse[k], dense[k], atol=1e-8)

    def test_slam_min_degree_order(self):
        g = slam_graph()
        dense = g.solve_dense()
        sparse, _ = solve(g, min_degree_ordering(g))
        for k in dense:
            assert np.allclose(sparse[k], dense[k], atol=1e-7)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 8), st.integers(0, 1000))
    def test_random_chains_any_size(self, n, seed):
        g = chain_graph(n, seed=seed)
        dense = g.solve_dense()
        sparse, _ = solve(g, natural_ordering(g))
        for k in dense:
            assert np.allclose(sparse[k], dense[k], atol=1e-7)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_random_slam_orderings(self, seed):
        rng = np.random.default_rng(seed)
        g = slam_graph(seed=seed)
        order = natural_ordering(g)
        rng.shuffle(order)
        dense = g.solve_dense()
        sparse, _ = solve(g, order)
        for k in dense:
            assert np.allclose(sparse[k], dense[k], atol=1e-6)


class TestStats:
    def test_qr_steps_one_per_variable(self):
        g = slam_graph()
        _, stats = eliminate(g, natural_ordering(g))
        assert len(stats.qr_steps) == len(g.keys())

    def test_backsub_records(self):
        g = chain_graph(4)
        _, stats = solve(g, natural_ordering(g))
        assert len(stats.backsub_steps) == 4
        # The last-eliminated variable is solved first with no parents.
        assert stats.backsub_steps[0].separator_dim == 0

    def test_max_qr_shape(self):
        g = chain_graph(4)
        _, stats = eliminate(g, natural_ordering(g))
        rows, cols = stats.max_qr_shape()
        assert rows >= 2 and cols >= 2

    def test_mean_density_in_unit_interval(self):
        g = slam_graph()
        _, stats = eliminate(g, min_degree_ordering(g))
        assert 0.0 < stats.mean_density() <= 1.0

    def test_empty_stats(self):
        from repro.factorgraph import EliminationStats

        s = EliminationStats()
        assert s.max_qr_shape() == (0, 0)
        assert s.mean_density() == 0.0


class TestBayesNet:
    def test_conditional_requires_solved_parents(self):
        rng = np.random.default_rng(3)
        f = GaussianFactor(
            [X(0), X(1)],
            {X(0): np.eye(2) + rng.standard_normal((2, 2)) * 0.1,
             X(1): rng.standard_normal((2, 2))},
            rng.standard_normal(2),
        )
        conditional, _, _ = eliminate_variable([f], X(0))
        with pytest.raises(GraphError):
            conditional.solve({})

    def test_singular_conditional_rejected(self):
        from repro.factorgraph import GaussianConditional

        with pytest.raises(LinearizationError):
            GaussianConditional(X(0), np.zeros((2, 2)), [], np.zeros(2))

    def test_conditional_shape_validation(self):
        from repro.factorgraph import GaussianConditional

        with pytest.raises(LinearizationError):
            GaussianConditional(X(0), np.eye(2), [], np.zeros(3))

    def test_ordering_validation_in_eliminate(self):
        g = chain_graph(3)
        with pytest.raises(GraphError):
            eliminate(g, [X(0), X(1)])  # missing X(2)
        with pytest.raises(GraphError):
            eliminate(g, [X(0), X(0), X(1), X(2)])  # duplicate
