"""Tests for g2o pose-graph I/O."""

import io

import numpy as np
import pytest

from repro.errors import GraphError
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factorgraph.g2o import load_g2o, save_g2o
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose

SAMPLE_2D = """\
# a three-pose chain with a loop closure
VERTEX_SE2 0 0 0 0
VERTEX_SE2 1 1.0 0.1 0.05
VERTEX_SE2 2 2.0 0.0 -0.02
EDGE_SE2 0 1 1.0 0.1 0.05 100 0 0 100 0 400
EDGE_SE2 1 2 1.0 -0.1 -0.07 100 0 0 100 0 400
EDGE_SE2 0 2 2.0 0.0 -0.02 50 0 0 50 0 200
"""


def build_3d_graph(seed=0):
    rng = np.random.default_rng(seed)
    truth = [Pose.identity(3)]
    for _ in range(3):
        truth.append(truth[-1].compose(Pose.random(3, rng, scale=0.4)))
    graph = FactorGraph()
    values = Values({X(i): p for i, p in enumerate(truth)})
    for i in range(3):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                truth[i + 1].ominus(truth[i]),
                                Isotropic(6, 0.1)))
    return graph, values, truth


class TestLoad2d:
    def test_vertices_and_edges(self):
        graph, values = load_g2o(io.StringIO(SAMPLE_2D))
        assert len(values) == 3
        assert len(graph) == 3
        assert values.pose(X(1)).t[0] == pytest.approx(1.0)

    def test_loaded_graph_optimizes(self):
        graph, values = load_g2o(io.StringIO(SAMPLE_2D))
        graph.add(PriorFactor(X(0), values.pose(X(0)), Isotropic(3, 1e-3)))
        result = graph.optimize(values)
        assert result.converged

    def test_comments_and_blanks_skipped(self):
        text = "# comment\n\n" + SAMPLE_2D
        graph, values = load_g2o(io.StringIO(text))
        assert len(values) == 3

    def test_unknown_tag_rejected(self):
        with pytest.raises(GraphError):
            load_g2o(io.StringIO("VERTEX_SE3 0 0 0 0\n"))

    def test_malformed_line_rejected(self):
        with pytest.raises(GraphError):
            load_g2o(io.StringIO("VERTEX_SE2 0 0\n"))

    def test_information_respected(self):
        # The theta entry (400) must dominate the whitened residual.
        graph, values = load_g2o(io.StringIO(SAMPLE_2D))
        factor = graph.factors[0]
        gf = factor.linearize(values)
        # Perfect chain: residual ~ 0; check weights via the jacobian
        # block scale instead (sqrt(400) = 20 on the heading row).
        block = gf.block(factor.keys[0])
        assert abs(block[0, 0]) == pytest.approx(20.0, rel=0.05)


class TestRoundTrip:
    def test_2d_round_trip(self):
        graph, values = load_g2o(io.StringIO(SAMPLE_2D))
        buffer = io.StringIO()
        save_g2o(graph, values, buffer)
        graph2, values2 = load_g2o(io.StringIO(buffer.getvalue()))
        assert len(graph2) == len(graph)
        for key in values.keys():
            assert values2.pose(key).almost_equal(values.pose(key),
                                                  tol=1e-7)

    def test_3d_round_trip(self):
        graph, values, truth = build_3d_graph()
        buffer = io.StringIO()
        save_g2o(graph, values, buffer)
        graph2, values2 = load_g2o(io.StringIO(buffer.getvalue()))
        assert len(graph2) == len(graph)
        for key in values.keys():
            assert values2.pose(key).almost_equal(values.pose(key),
                                                  tol=1e-6)
        # Measurements survive the quaternion round trip.
        for f1, f2 in zip(graph.factors, graph2.factors):
            assert f2.measured.almost_equal(f1.measured, tol=1e-6)

    def test_3d_loaded_graph_optimizes_to_truth(self):
        rng = np.random.default_rng(1)
        graph, values, truth = build_3d_graph()
        buffer = io.StringIO()
        save_g2o(graph, values, buffer)
        graph2, values2 = load_g2o(io.StringIO(buffer.getvalue()))
        graph2.add(PriorFactor(X(0), truth[0], Isotropic(6, 1e-4)))
        noisy = values2.retract({
            X(i): 0.1 * rng.standard_normal(6) for i in range(4)
        })
        result = graph2.optimize(noisy)
        assert result.converged
        for i, t in enumerate(truth):
            assert result.values.pose(X(i)).almost_equal(t, tol=1e-4)

    def test_save_rejects_non_pose_values(self):
        values = Values({X(0): np.zeros(2)})
        with pytest.raises(GraphError):
            save_g2o(FactorGraph(), values, io.StringIO())

    def test_save_rejects_non_between_factors(self):
        graph = FactorGraph([PriorFactor(X(0), Pose.identity(2))])
        values = Values({X(0): Pose.identity(2)})
        with pytest.raises(GraphError):
            save_g2o(graph, values, io.StringIO())

    def test_file_path_round_trip(self, tmp_path):
        graph, values, _ = build_3d_graph()
        path = tmp_path / "graph.g2o"
        save_g2o(graph, values, str(path))
        graph2, values2 = load_g2o(str(path))
        assert len(values2) == len(values)
