"""Tests for the nonlinear FactorGraph and factor base machinery."""

import numpy as np
import pytest

from repro.errors import GraphError, LinearizationError
from repro.factorgraph import (
    FactorGraph,
    FunctionFactor,
    Isotropic,
    Unit,
    Values,
    X,
    Y,
    numerical_jacobian,
    prior_on_vector,
)
from repro.geometry import Pose


def vector_prior(key, target, sigma=1.0):
    return prior_on_vector(key, np.asarray(target, dtype=float), sigma)


def difference_factor(k1, k2, measured):
    """x2 - x1 - measured, with analytic Jacobians."""
    measured = np.asarray(measured, dtype=float)
    dim = measured.shape[0]

    def fn(values):
        return values.vector(k2) - values.vector(k1) - measured

    def jac(values):
        return [-np.eye(dim), np.eye(dim)]

    return FunctionFactor([k1, k2], Unit(dim), fn, jac)


class TestFactorBase:
    def test_duplicate_keys_rejected(self):
        with pytest.raises(LinearizationError):
            FunctionFactor([X(0), X(0)], Unit(1), lambda v: np.zeros(1))

    def test_error_is_half_squared_norm(self):
        f = vector_prior(X(0), [0.0, 0.0])
        v = Values({X(0): np.array([3.0, 4.0])})
        assert f.error(v) == pytest.approx(12.5)

    def test_linearize_shapes(self):
        f = difference_factor(X(0), X(1), [1.0, 1.0])
        v = Values({X(0): np.zeros(2), X(1): np.zeros(2)})
        gf = f.linearize(v)
        assert gf.rows == 2
        assert np.allclose(gf.block(X(0)), -np.eye(2))
        assert np.allclose(gf.rhs, [1.0, 1.0])

    def test_linearize_validates_residual_shape(self):
        f = FunctionFactor([X(0)], Unit(2), lambda v: np.zeros(3))
        with pytest.raises(LinearizationError):
            f.linearize(Values({X(0): np.zeros(2)}))

    def test_linearize_validates_jacobian_shape(self):
        f = FunctionFactor(
            [X(0)], Unit(2), lambda v: np.zeros(2),
            lambda v: [np.zeros((2, 5))],
        )
        with pytest.raises(LinearizationError):
            f.linearize(Values({X(0): np.zeros(2)}))

    def test_linearize_validates_block_count(self):
        f = FunctionFactor(
            [X(0), X(1)], Unit(1), lambda v: np.zeros(1),
            lambda v: [np.zeros((1, 1))],
        )
        with pytest.raises(LinearizationError):
            f.linearize(Values({X(0): np.zeros(1), X(1): np.zeros(1)}))

    def test_numerical_jacobian_matches_analytic(self):
        f = difference_factor(X(0), X(1), [0.5, -0.5])
        v = Values({X(0): np.array([1.0, 2.0]), X(1): np.array([0.0, 1.0])})
        num = numerical_jacobian(f, v, X(0))
        assert np.allclose(num, -np.eye(2), atol=1e-6)

    def test_numerical_jacobian_on_pose_manifold(self):
        def fn(values):
            return values.pose(X(0)).t

        f = FunctionFactor([X(0)], Unit(3), fn)
        rng = np.random.default_rng(0)
        v = Values({X(0): Pose.random(3, rng)})
        num = numerical_jacobian(f, v, X(0))
        assert num.shape == (3, 6)
        # Translation part of the chart is additive: d t / d dt = I.
        assert np.allclose(num[:, 3:], np.eye(3), atol=1e-6)

    def test_whitening_applied(self):
        f = vector_prior(X(0), [0.0], sigma=0.1)
        gf = f.linearize(Values({X(0): np.array([1.0])}))
        assert np.allclose(gf.block(X(0)), [[10.0]])
        assert np.allclose(gf.rhs, [-10.0])


class TestFactorGraph:
    def test_add_rejects_non_factor(self):
        with pytest.raises(GraphError):
            FactorGraph().add("not a factor")

    def test_keys_and_counts(self):
        g = FactorGraph([
            vector_prior(X(0), [0.0]),
            difference_factor(X(0), X(1), [1.0]),
        ])
        assert g.keys() == [X(0), X(1)]
        assert g.variable_count() == 2
        assert len(g) == 2

    def test_factors_of(self):
        f0 = vector_prior(X(0), [0.0])
        f1 = difference_factor(X(0), X(1), [1.0])
        g = FactorGraph([f0, f1])
        assert g.factors_of(X(1)) == [f1]
        assert g.factors_of(X(0)) == [f0, f1]

    def test_check_values_missing_key(self):
        g = FactorGraph([difference_factor(X(0), X(1), [1.0])])
        with pytest.raises(GraphError):
            g.error(Values({X(0): np.zeros(1)}))

    def test_total_error(self):
        g = FactorGraph([
            vector_prior(X(0), [0.0]),
            vector_prior(X(0), [2.0]),
        ])
        v = Values({X(0): np.array([1.0])})
        assert g.error(v) == pytest.approx(1.0)

    def test_linearize_size(self):
        g = FactorGraph([
            vector_prior(X(0), [0.0, 0.0]),
            difference_factor(X(0), X(1), [1.0, 0.0]),
        ])
        v = Values({X(0): np.zeros(2), X(1): np.zeros(2)})
        linear = g.linearize(v)
        assert linear.shape() == (4, 4)

    def test_optimize_linear_chain_one_step(self):
        # Linear problem: GN converges in one iteration.
        g = FactorGraph([
            vector_prior(X(0), [0.0, 0.0], sigma=0.1),
            difference_factor(X(0), X(1), [1.0, 2.0]),
            difference_factor(X(1), X(2), [1.0, 2.0]),
        ])
        v = Values({X(i): np.zeros(2) for i in range(3)})
        result = g.optimize(v)
        assert np.allclose(result.values.vector(X(2)), [2.0, 4.0], atol=1e-8)
        assert result.converged

    def test_default_ordering_covers_all_keys(self):
        g = FactorGraph([
            vector_prior(X(0), [0.0]),
            difference_factor(X(0), Y(0), [1.0]),
        ])
        v = Values({X(0): np.zeros(1), Y(0): np.zeros(1)})
        order = g.default_ordering(v)
        assert set(order) == {X(0), Y(0)}
