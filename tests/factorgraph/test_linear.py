"""Tests for Gaussian factors and the assembled linear system."""

import numpy as np
import pytest

from repro.errors import GraphError, LinearizationError
from repro.factorgraph import GaussianFactor, GaussianFactorGraph, X, Y


def simple_factor(keys, rows, seed=0, dims=None):
    rng = np.random.default_rng(seed)
    dims = dims or {k: 2 for k in keys}
    blocks = {k: rng.standard_normal((rows, dims[k])) for k in keys}
    return GaussianFactor(keys, blocks, rng.standard_normal(rows))


class TestGaussianFactor:
    def test_basic_accessors(self):
        f = simple_factor([X(0), X(1)], rows=3)
        assert f.rows == 3
        assert f.keys == [X(0), X(1)]
        assert f.key_dim(X(0)) == 2
        assert f.touches(X(1)) and not f.touches(Y(0))

    def test_block_unknown_key(self):
        f = simple_factor([X(0)], rows=2)
        with pytest.raises(GraphError):
            f.block(Y(0))

    def test_row_mismatch_rejected(self):
        with pytest.raises(LinearizationError):
            GaussianFactor([X(0)], {X(0): np.zeros((3, 2))}, np.zeros(2))

    def test_blocks_must_match_keys(self):
        with pytest.raises(LinearizationError):
            GaussianFactor([X(0)], {Y(0): np.zeros((2, 2))}, np.zeros(2))

    def test_rhs_must_be_vector(self):
        with pytest.raises(LinearizationError):
            GaussianFactor([X(0)], {X(0): np.zeros((2, 2))}, np.zeros((2, 1)))

    def test_error_at_solution(self):
        a = np.eye(2)
        f = GaussianFactor([X(0)], {X(0): a}, np.array([1.0, 2.0]))
        assert f.error({X(0): np.array([1.0, 2.0])}) == pytest.approx(0.0)
        assert f.error({X(0): np.zeros(2)}) == pytest.approx(5.0)


class TestGaussianFactorGraph:
    def test_keys_first_seen_order(self):
        g = GaussianFactorGraph([
            simple_factor([X(1), Y(0)], 2, seed=1),
            simple_factor([X(0), X(1)], 2, seed=2),
        ])
        assert g.keys() == [X(1), Y(0), X(0)]

    def test_key_dims_consistency_enforced(self):
        g = GaussianFactorGraph([
            simple_factor([X(0)], 2, dims={X(0): 2}),
            simple_factor([X(0)], 2, dims={X(0): 3}),
        ])
        with pytest.raises(GraphError):
            g.key_dims()

    def test_dense_system_shapes(self):
        g = GaussianFactorGraph([
            simple_factor([X(0), X(1)], 3, seed=3),
            simple_factor([X(1)], 2, seed=4),
        ])
        a, b, slices = g.dense_system()
        assert a.shape == (5, 4)
        assert b.shape == (5,)
        assert slices[X(0)] == slice(0, 2)

    def test_dense_system_respects_ordering(self):
        g = GaussianFactorGraph([simple_factor([X(0), X(1)], 2, seed=5)])
        _, _, slices = g.dense_system(ordering=[X(1), X(0)])
        assert slices[X(1)] == slice(0, 2)

    def test_ordering_validation(self):
        g = GaussianFactorGraph([simple_factor([X(0)], 2)])
        with pytest.raises(GraphError):
            g.dense_system(ordering=[X(0), Y(9)])
        with pytest.raises(GraphError):
            g.dense_system(ordering=[])

    def test_solve_dense_matches_lstsq(self):
        rng = np.random.default_rng(6)
        a0 = rng.standard_normal((4, 2))
        b0 = rng.standard_normal(4)
        g = GaussianFactorGraph([GaussianFactor([X(0)], {X(0): a0}, b0)])
        sol = g.solve_dense()
        expected, *_ = np.linalg.lstsq(a0, b0, rcond=None)
        assert np.allclose(sol[X(0)], expected)

    def test_solve_dense_empty(self):
        assert GaussianFactorGraph().solve_dense() == {}

    def test_density_and_nnz(self):
        # One factor touching X0 only, in a two-variable system: half dense.
        f1 = simple_factor([X(0)], 2)
        f2 = simple_factor([X(1)], 2, seed=7)
        g = GaussianFactorGraph([f1, f2])
        assert g.shape() == (4, 4)
        assert g.structural_nnz() == 8
        assert g.density() == pytest.approx(0.5)

    def test_density_empty_graph(self):
        assert GaussianFactorGraph().density() == 0.0

    def test_add_and_len(self):
        g = GaussianFactorGraph()
        g.add(simple_factor([X(0)], 1))
        assert len(g) == 1
        assert len(list(iter(g))) == 1
