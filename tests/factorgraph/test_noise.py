"""Tests for Gaussian noise models."""

import numpy as np
import pytest

from repro.errors import LinearizationError
from repro.factorgraph import Diagonal, FullCovariance, Isotropic, Unit


class TestUnit:
    def test_whiten_is_identity(self):
        n = Unit(3)
        r = np.array([1.0, -2.0, 3.0])
        assert np.allclose(n.whiten(r), r)

    def test_whiten_jacobian_identity(self):
        n = Unit(2)
        j = np.arange(6.0).reshape(2, 3)
        assert np.allclose(n.whiten_jacobian(j), j)


class TestIsotropic:
    def test_scales_by_inverse_sigma(self):
        n = Isotropic(2, 0.5)
        assert np.allclose(n.whiten(np.array([1.0, 2.0])), [2.0, 4.0])

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(LinearizationError):
            Isotropic(2, 0.0)

    def test_dim(self):
        assert Isotropic(4, 1.0).dim == 4


class TestDiagonal:
    def test_per_component_scaling(self):
        n = Diagonal([1.0, 0.1])
        assert np.allclose(n.whiten(np.array([1.0, 1.0])), [1.0, 10.0])

    def test_rejects_negative(self):
        with pytest.raises(LinearizationError):
            Diagonal([1.0, -1.0])

    def test_rejects_matrix(self):
        with pytest.raises(LinearizationError):
            Diagonal(np.eye(2))


class TestFullCovariance:
    def test_whitening_normalizes_covariance(self):
        cov = np.array([[2.0, 0.5], [0.5, 1.0]])
        n = FullCovariance(cov)
        w = n.sqrt_information
        # W Sigma W^T must be identity.
        assert np.allclose(w @ cov @ w.T, np.eye(2), atol=1e-10)

    def test_rejects_indefinite(self):
        with pytest.raises(LinearizationError):
            FullCovariance(np.array([[1.0, 2.0], [2.0, 1.0]]))


class TestValidation:
    def test_residual_shape_mismatch(self):
        with pytest.raises(LinearizationError):
            Unit(3).whiten(np.zeros(2))

    def test_jacobian_shape_mismatch(self):
        with pytest.raises(LinearizationError):
            Unit(3).whiten_jacobian(np.zeros((2, 4)))

    def test_nonsquare_sqrt_information(self):
        from repro.factorgraph import NoiseModel

        with pytest.raises(LinearizationError):
            NoiseModel(np.zeros((2, 3)))
