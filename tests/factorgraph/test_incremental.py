"""Tests for the iSAM-style incremental solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.factorgraph import (
    GaussianFactor,
    GaussianFactorGraph,
    IncrementalSolver,
    X,
    Y,
    conditional_to_factor,
    eliminate_variable,
    natural_ordering,
)


def prior(key, value, weight=1.0, dim=2, seed=0):
    rng = np.random.default_rng(seed)
    del rng
    return GaussianFactor([key], {key: weight * np.eye(dim)},
                          weight * np.asarray(value, dtype=float))


def between(k1, k2, measured, dim=2):
    measured = np.asarray(measured, dtype=float)
    return GaussianFactor(
        [k1, k2], {k1: -np.eye(dim), k2: np.eye(dim)}, measured)


def batch_solution(factors):
    g = GaussianFactorGraph(factors)
    return g.solve_dense()


class TestConditionalToFactor:
    def test_roundtrip_through_elimination(self):
        rng = np.random.default_rng(0)
        f = GaussianFactor(
            [X(0), X(1)],
            {X(0): np.eye(2) + 0.1 * rng.standard_normal((2, 2)),
             X(1): rng.standard_normal((2, 2))},
            rng.standard_normal(2),
        )
        conditional, _, _ = eliminate_variable([f], X(0))
        back = conditional_to_factor(conditional)
        assert back.keys == [X(0), X(1)]
        assert back.rows == 2


class TestIncrementalMatchesBatch:
    def test_chain_grown_one_pose_at_a_time(self):
        solver = IncrementalSolver()
        all_factors = [prior(X(0), [1.0, 2.0])]
        solver.update([all_factors[0]])
        for i in range(6):
            f = between(X(i), X(i + 1), [1.0, 0.0])
            all_factors.append(f)
            solver.update([f])
            incremental = solver.solve()
            batch = batch_solution(all_factors)
            for k in batch:
                assert np.allclose(incremental[k], batch[k], atol=1e-9)

    def test_loop_closure_update(self):
        solver = IncrementalSolver()
        factors = [prior(X(0), [0.0, 0.0])]
        for i in range(4):
            factors.append(between(X(i), X(i + 1), [1.0, 0.1]))
        solver.update(factors)
        closure = between(X(4), X(0), [-4.0, -0.4])
        factors.append(closure)
        solver.update([closure])
        batch = batch_solution(factors)
        incremental = solver.solve()
        for k in batch:
            assert np.allclose(incremental[k], batch[k], atol=1e-8)

    def test_landmark_graph_updates(self):
        solver = IncrementalSolver()
        factors = [prior(X(0), [0.0, 0.0]),
                   between(X(0), Y(0), [2.0, 1.0])]
        solver.update(factors)
        more = [between(X(0), X(1), [1.0, 0.0]),
                between(X(1), Y(0), [1.0, 1.0])]
        factors += more
        solver.update(more)
        batch = batch_solution(factors)
        incremental = solver.solve()
        for k in batch:
            assert np.allclose(incremental[k], batch[k], atol=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500), st.integers(2, 6))
    def test_random_growth_property(self, seed, chunks):
        rng = np.random.default_rng(seed)
        solver = IncrementalSolver()
        factors = [prior(X(0), rng.standard_normal(2))]
        solver.update([factors[0]])
        node = 0
        for _ in range(chunks):
            batch_chunk = []
            for _ in range(rng.integers(1, 3)):
                node += 1
                batch_chunk.append(
                    between(X(rng.integers(0, node)), X(node),
                            rng.standard_normal(2)))
            factors += batch_chunk
            solver.update(batch_chunk)
        batch = batch_solution(factors)
        incremental = solver.solve()
        for k in batch:
            assert np.allclose(incremental[k], batch[k], atol=1e-7)


class TestIncrementality:
    def test_tail_update_touches_few_variables(self):
        """Extending a long chain must not re-eliminate the whole graph."""
        solver = IncrementalSolver()
        factors = [prior(X(0), [0.0, 0.0])]
        for i in range(20):
            factors.append(between(X(i), X(i + 1), [1.0, 0.0]))
        solver.update(factors)
        solver.update([between(X(20), X(21), [1.0, 0.0])])
        assert solver.last_reeliminated <= 3
        assert len(solver) == 22

    def test_update_on_root_reeliminates_ancestors(self):
        solver = IncrementalSolver()
        factors = [prior(X(0), [0.0, 0.0])]
        for i in range(5):
            factors.append(between(X(i), X(i + 1), [1.0, 0.0]))
        solver.update(factors)
        # A new factor on X(0): its ancestors toward the root re-run.
        solver.update([prior(X(0), [0.5, 0.5], seed=1)])
        assert solver.last_reeliminated >= 1
        batch = batch_solution(factors + [prior(X(0), [0.5, 0.5], seed=1)])
        incremental = solver.solve()
        for k in batch:
            assert np.allclose(incremental[k], batch[k], atol=1e-8)

    def test_empty_update_is_noop(self):
        solver = IncrementalSolver()
        solver.update([prior(X(0), [1.0, 1.0])])
        before = solver.solve()
        solver.update([])
        assert solver.last_reeliminated == 0
        after = solver.solve()
        assert np.allclose(before[X(0)], after[X(0)])

    def test_empty_solver_solves_empty(self):
        assert IncrementalSolver().solve() == {}
