"""Tests for marginal covariance recovery."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.factorgraph import (
    BayesNet,
    GaussianFactor,
    GaussianFactorGraph,
    Marginals,
    X,
    eliminate,
    natural_ordering,
)


def random_well_posed_graph(n=4, dim=2, seed=0):
    rng = np.random.default_rng(seed)
    factors = [GaussianFactor([X(0)], {X(0): np.eye(dim) * 2.0},
                              rng.standard_normal(dim))]
    for i in range(n - 1):
        factors.append(GaussianFactor(
            [X(i), X(i + 1)],
            {X(i): rng.standard_normal((dim, dim)) + np.eye(dim),
             X(i + 1): np.eye(dim) * 1.5},
            rng.standard_normal(dim),
        ))
    return GaussianFactorGraph(factors)


def dense_covariance(graph):
    a, _, slices = graph.dense_system()
    info = a.T @ a
    return np.linalg.inv(info), slices


class TestMarginals:
    def test_marginal_matches_dense_inverse(self):
        g = random_well_posed_graph()
        net, _ = eliminate(g, natural_ordering(g))
        marginals = Marginals(net)
        full, slices = dense_covariance(g)
        for key in g.keys():
            s = slices[key]
            expected = full[s, s]
            assert np.allclose(marginals.marginal_covariance(key), expected,
                               atol=1e-9), f"mismatch at {key}"

    def test_marginal_independent_of_ordering(self):
        g = random_well_posed_graph(seed=1)
        order_a = natural_ordering(g)
        order_b = list(reversed(order_a))
        ma = Marginals(eliminate(g, order_a)[0])
        mb = Marginals(eliminate(g, order_b)[0])
        for key in g.keys():
            assert np.allclose(ma.marginal_covariance(key),
                               mb.marginal_covariance(key), atol=1e-9)

    def test_joint_covariance_matches_dense(self):
        g = random_well_posed_graph(n=3, seed=2)
        net, _ = eliminate(g, natural_ordering(g))
        marginals = Marginals(net)
        joint = marginals.joint_covariance()
        full, slices = dense_covariance(g)
        # Compare diagonal blocks (column orders may differ).
        for key in g.keys():
            s = slices[key]
            block = marginals.marginal_covariance(key)
            assert np.allclose(block, full[s, s], atol=1e-9)
        assert joint.shape == full.shape

    def test_covariance_symmetric_positive_definite(self):
        g = random_well_posed_graph(seed=3)
        net, _ = eliminate(g, natural_ordering(g))
        marginals = Marginals(net)
        for key in g.keys():
            sigma = marginals.marginal_covariance(key)
            assert np.allclose(sigma, sigma.T)
            assert np.all(np.linalg.eigvalsh(sigma) > 0)

    def test_standard_deviations(self):
        g = GaussianFactorGraph([
            GaussianFactor([X(0)], {X(0): np.diag([2.0, 4.0])},
                           np.zeros(2)),
        ])
        net, _ = eliminate(g, [X(0)])
        sd = Marginals(net).standard_deviations(X(0))
        assert np.allclose(sd, [0.5, 0.25])

    def test_caching(self):
        g = random_well_posed_graph(seed=4)
        net, _ = eliminate(g, natural_ordering(g))
        m = Marginals(net)
        a = m.marginal_covariance(X(0))
        b = m.marginal_covariance(X(0))
        assert a is b

    def test_unknown_key_rejected(self):
        g = random_well_posed_graph()
        net, _ = eliminate(g, natural_ordering(g))
        with pytest.raises(GraphError):
            Marginals(net).marginal_covariance(X(99))

    def test_empty_bayes_net_rejected(self):
        with pytest.raises(GraphError):
            Marginals(BayesNet([]))

    def test_more_measurements_shrink_covariance(self):
        base = random_well_posed_graph(seed=5)
        extended = GaussianFactorGraph(base.factors)
        extended.add(GaussianFactor([X(1)], {X(1): 3.0 * np.eye(2)},
                                    np.zeros(2)))
        m_base = Marginals(eliminate(base, natural_ordering(base))[0])
        m_ext = Marginals(eliminate(extended,
                                    natural_ordering(extended))[0])
        tr_base = np.trace(m_base.marginal_covariance(X(1)))
        tr_ext = np.trace(m_ext.marginal_covariance(X(1)))
        assert tr_ext < tr_base
