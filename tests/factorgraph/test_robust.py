"""Tests for robust (M-estimator) noise models."""

import numpy as np
import pytest

from repro.errors import LinearizationError
from repro.factorgraph import (
    CauchyEstimator,
    FactorGraph,
    HuberEstimator,
    Isotropic,
    RobustNoiseModel,
    TukeyEstimator,
    Values,
    X,
)
from repro.factorgraph.factor import prior_on_vector
from repro.factors import PriorFactor


class TestEstimators:
    def test_huber_weight_regimes(self):
        est = HuberEstimator(k=1.0)
        assert est.weight(0.5) == 1.0
        assert est.weight(2.0) == pytest.approx(0.5)
        assert est.loss(0.5) == pytest.approx(0.125)
        assert est.loss(2.0) == pytest.approx(1.5)

    def test_huber_loss_continuous_at_threshold(self):
        est = HuberEstimator(k=1.3)
        assert est.loss(1.3 - 1e-9) == pytest.approx(est.loss(1.3 + 1e-9),
                                                     abs=1e-6)

    def test_tukey_rejects_gross_outliers(self):
        est = TukeyEstimator(c=4.0)
        assert est.weight(0.0) == 1.0
        assert est.weight(10.0) < 1e-5
        assert est.loss(10.0) == pytest.approx(est.loss(100.0))

    def test_cauchy_monotone_decreasing(self):
        est = CauchyEstimator(c=2.0)
        weights = [est.weight(x) for x in (0.0, 1.0, 5.0, 50.0)]
        assert weights[0] == 1.0
        assert all(a > b for a, b in zip(weights, weights[1:]))

    def test_thresholds_validated(self):
        with pytest.raises(LinearizationError):
            HuberEstimator(k=0.0)
        with pytest.raises(LinearizationError):
            TukeyEstimator(c=-1.0)
        with pytest.raises(LinearizationError):
            CauchyEstimator(c=0.0)


class TestRobustNoiseModel:
    def test_inlier_behaves_like_base(self):
        base = Isotropic(2, 1.0)
        robust = RobustNoiseModel(base, HuberEstimator(k=10.0))
        r = np.array([0.5, -0.5])
        assert np.allclose(robust.whiten(r), base.whiten(r))
        j = np.eye(2)
        assert np.allclose(robust.whiten_jacobian(j), j)

    def test_outlier_downweighted(self):
        robust = RobustNoiseModel(Isotropic(1, 1.0), HuberEstimator(k=1.0))
        whitened = robust.whiten(np.array([100.0]))
        # Huber: ||w r|| = sqrt(k/||r||) * ||r|| = sqrt(k ||r||) = 10.
        assert np.linalg.norm(whitened) == pytest.approx(10.0)
        # Jacobian rescaled consistently with the residual.
        j = robust.whiten_jacobian(np.eye(1))
        assert j[0, 0] == pytest.approx(0.1)

    def test_robust_loss(self):
        robust = RobustNoiseModel(Isotropic(1, 1.0), HuberEstimator(k=1.0))
        assert robust.robust_loss(np.array([0.5])) == pytest.approx(0.125)

    def test_dim_passthrough(self):
        robust = RobustNoiseModel(Isotropic(3, 2.0), CauchyEstimator())
        assert robust.dim == 3


class TestRobustOptimization:
    def test_outlier_measurement_rejected(self):
        """With one wildly wrong prior among many good ones, the robust
        solution stays near the consensus while least squares is dragged
        away."""
        good = [np.array([1.0]), np.array([1.05]), np.array([0.95]),
                np.array([1.02])]
        outlier = np.array([50.0])

        def build(robust):
            g = FactorGraph()
            for m in good:
                g.add(PriorFactor(X(0), m, Isotropic(1, 0.1)))
            noise = Isotropic(1, 0.1)
            if robust:
                noise = RobustNoiseModel(noise, TukeyEstimator(c=4.0))
            g.add(PriorFactor(X(0), outlier, noise))
            return g

        initial = Values({X(0): np.array([1.0])})
        plain = build(False).optimize(initial).values.vector(X(0))[0]
        robust = build(True).optimize(initial).values.vector(X(0))[0]
        assert plain > 5.0          # dragged toward the outlier
        assert abs(robust - 1.0) < 0.1   # outlier rejected

    def test_huber_softens_but_keeps_outlier(self):
        g = FactorGraph([
            prior_on_vector(X(0), np.array([0.0]), sigma=1.0),
            PriorFactor(X(0), np.array([10.0]),
                        RobustNoiseModel(Isotropic(1, 1.0),
                                         HuberEstimator(k=1.0))),
        ])
        result = g.optimize(Values({X(0): np.array([0.0])}),
                            ordering=None)
        x = result.values.vector(X(0))[0]
        assert 0.1 < x < 5.0  # pulled, but far less than the midpoint 5
