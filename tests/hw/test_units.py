"""Tests for the hardware unit latency/energy models."""

import numpy as np
import pytest

from repro.compiler.isa import Instruction, Opcode
from repro.errors import HardwareError
from repro.hw import DEFAULT_TEMPLATES
from repro.hw.units import (
    BackSubUnit,
    MatMulUnit,
    QRUnit,
    SpecialFunctionUnit,
    VectorUnit,
    _shape_of,
)
from repro.compiler.isa import (
    UNIT_BSUB,
    UNIT_MATMUL,
    UNIT_QR,
    UNIT_SPECIAL,
    UNIT_VECTOR,
)


def mm_instr(m, k, n):
    shapes = {"a": (m, k), "b": (k, n), "out": (m, n)}
    instr = Instruction(0, Opcode.MM, ["a", "b"], ["out"])
    return instr, shapes


def qr_instr(rows_list, total_cols, frontal):
    meta = {
        "sources": [{"reg": f"r{i}", "rows": r, "cols": {}}
                    for i, r in enumerate(rows_list)],
        "total_cols": total_cols,
        "frontal_dim": frontal,
        "col_layout": [],
        "marginal_rows": 0,
    }
    return Instruction(0, Opcode.QR, [s["reg"] for s in meta["sources"]],
                       ["cond"], meta), {}


def bsub_instr(frontal, sep):
    meta = {"frontal_dim": frontal, "parents": [(0, sep)] if sep else []}
    return Instruction(0, Opcode.BSUB, ["cond"], ["sol"], meta), {}


class TestMatMulUnit:
    unit = DEFAULT_TEMPLATES[UNIT_MATMUL]

    def test_latency_grows_with_k(self):
        small, shapes_s = mm_instr(3, 3, 3)
        big, shapes_b = mm_instr(3, 30, 3)
        assert self.unit.latency(big, shapes_b) > (
            self.unit.latency(small, shapes_s))

    def test_tiling_beyond_array_size(self):
        inside, s1 = mm_instr(8, 8, 8)
        outside, s2 = mm_instr(9, 8, 9)  # 4 tiles instead of 1
        assert self.unit.latency(outside, s2) > self.unit.latency(inside, s1)

    def test_energy_proportional_to_macs(self):
        a, sa = mm_instr(2, 2, 2)
        b, sb = mm_instr(4, 4, 4)
        ea = self.unit.energy(a, sa)
        eb = self.unit.energy(b, sb)
        assert eb > ea

    def test_vector_operand_handled(self):
        shapes = {"a": (3, 3), "b": (3,), "out": (3,)}
        instr = Instruction(0, Opcode.RV, ["a", "b"], ["out"])
        assert self.unit.latency(instr, shapes) >= 1


class TestQRUnit:
    unit = DEFAULT_TEMPLATES[UNIT_QR]

    def test_latency_grows_with_rows_and_frontal(self):
        small, _ = qr_instr([6], 6, 3)
        tall, _ = qr_instr([20], 6, 3)
        wide_front, _ = qr_instr([20], 6, 6)
        assert self.unit.latency(tall, {}) > self.unit.latency(small, {})
        assert self.unit.latency(wide_front, {}) > self.unit.latency(tall, {})

    def test_energy_positive(self):
        instr, _ = qr_instr([10, 10], 12, 6)
        assert self.unit.energy(instr, {}) > 0


class TestBackSubUnit:
    unit = DEFAULT_TEMPLATES[UNIT_BSUB]

    def test_separator_adds_latency(self):
        no_sep, _ = bsub_instr(6, 0)
        with_sep, _ = bsub_instr(6, 12)
        assert self.unit.latency(with_sep, {}) > self.unit.latency(no_sep, {})


class TestSpecialFunctionUnit:
    unit = DEFAULT_TEMPLATES[UNIT_SPECIAL]

    def test_cordic_ops_fixed_latency(self):
        shapes = {"phi": (3,), "rot": (3, 3)}
        exp_i = Instruction(0, Opcode.EXP, ["phi"], ["rot"])
        log_i = Instruction(1, Opcode.LOG, ["rot"], ["phi"])
        assert self.unit.latency(exp_i, shapes) == (
            self.unit.latency(log_i, shapes))

    def test_embed_scales_with_output(self):
        small = Instruction(0, Opcode.EMBED, [], ["a"], {})
        big = Instruction(1, Opcode.EMBED, [], ["a", "b"], {})
        shapes = {"a": (2, 3), "b": (20, 30)}
        assert self.unit.latency(big, shapes) > self.unit.latency(small,
                                                                  shapes)


class TestVectorUnit:
    unit = DEFAULT_TEMPLATES[UNIT_VECTOR]

    def test_latency_scales_with_elements(self):
        shapes = {"a": (4,), "b": (4,), "small": (4,), "large": (64, 4)}
        small = Instruction(0, Opcode.VP, ["a", "b"], ["small"])
        large = Instruction(1, Opcode.STACK, ["a"], ["large"])
        assert self.unit.latency(large, shapes) > self.unit.latency(small,
                                                                    shapes)


class TestShapeLookup:
    def test_missing_shape_raises(self):
        instr = Instruction(0, Opcode.RT, ["x"], ["y"])
        with pytest.raises(HardwareError):
            _shape_of(instr, {}, "x")
