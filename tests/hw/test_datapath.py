"""Tests for automatic datapath generation."""

import numpy as np

from repro.compiler import compile_graph
from repro.compiler.isa import (
    UNIT_BSUB,
    UNIT_MATMUL,
    UNIT_QR,
    UNIT_VECTOR,
)
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.hw import generate_datapath, required_buffer_kib


def compiled_chain(n=5, seed=0):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values)


class TestDatapathGeneration:
    def test_expected_connections_exist(self):
        compiled = compiled_chain()
        dp = generate_datapath(compiled.program)
        pairs = set(dp.connections)
        # The construct pipeline feeds row blocks into the QR unit...
        assert (UNIT_VECTOR, UNIT_QR) in pairs
        # ... QR conditionals feed back substitution ...
        assert (UNIT_QR, UNIT_BSUB) in pairs
        # ... and derivative chains stay inside the multiply unit.
        assert (UNIT_MATMUL, UNIT_MATMUL) in pairs

    def test_traffic_counts_positive(self):
        compiled = compiled_chain()
        dp = generate_datapath(compiled.program)
        for conn in dp.connections.values():
            assert conn.transfers > 0
            assert conn.words > 0

    def test_bus_width_power_of_two(self):
        compiled = compiled_chain()
        dp = generate_datapath(compiled.program)
        for conn in dp.connections.values():
            width = conn.width_bits
            assert width & (width - 1) == 0
            assert 32 <= width <= 512

    def test_total_traffic_grows_with_graph(self):
        small = generate_datapath(compiled_chain(3).program)
        large = generate_datapath(compiled_chain(8).program)
        assert large.total_traffic_words() > small.total_traffic_words()

    def test_peak_live_positive(self):
        dp = generate_datapath(compiled_chain().program)
        assert dp.buffer_words_peak > 0

    def test_describe_lines(self):
        dp = generate_datapath(compiled_chain().program)
        lines = dp.describe()
        assert len(lines) == len(dp.connections)

    def test_required_buffer_monotone(self):
        small = required_buffer_kib(compiled_chain(3).program)
        large = required_buffer_kib(compiled_chain(10).program)
        assert 4 <= small <= large

    def test_default_bus_width_for_empty_connection(self):
        from repro.hw import Connection

        assert Connection("a", "b").width_bits == 32
