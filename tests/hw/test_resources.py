"""Tests for resource vectors and accelerator configurations."""

import pytest

from repro.errors import HardwareError
from repro.compiler.isa import UNIT_MATMUL, UNIT_QR
from repro.hw import (
    AcceleratorConfig,
    Resources,
    ZC706,
    balanced_config,
    minimal_config,
)


class TestResources:
    def test_add_and_scale(self):
        a = Resources(lut=10, ff=20, bram=1, dsp=2)
        b = Resources(lut=5, ff=5, bram=1, dsp=1)
        assert a + b == Resources(15, 25, 2, 3)
        assert 2 * a == Resources(20, 40, 2, 4)

    def test_fits_within(self):
        small = Resources(lut=10, ff=10, bram=1, dsp=1)
        assert small.fits_within(ZC706)
        assert not Resources(dsp=10_000).fits_within(ZC706)

    def test_utilization(self):
        half = Resources(lut=ZC706.lut // 2)
        assert half.utilization(ZC706) == pytest.approx(0.5, abs=1e-3)

    def test_scaled_ratio(self):
        a = Resources(lut=30, ff=20, bram=4, dsp=10)
        b = Resources(lut=10, ff=10, bram=2, dsp=5)
        ratios = a.scaled_ratio(b)
        assert ratios["lut"] == pytest.approx(3.0)
        assert ratios["dsp"] == pytest.approx(2.0)

    def test_ratio_with_zero_denominator(self):
        ratios = Resources(lut=1).scaled_ratio(Resources())
        assert ratios["lut"] == float("inf")


class TestAcceleratorConfig:
    def test_minimal_config_fits_zc706(self):
        assert minimal_config().fits(ZC706)

    def test_balanced_config_fits_zc706(self):
        assert balanced_config().fits(ZC706)

    def test_with_extra_unit(self):
        base = minimal_config()
        bigger = base.with_extra_unit(UNIT_MATMUL)
        assert bigger.count(UNIT_MATMUL) == base.count(UNIT_MATMUL) + 1
        assert bigger.resources().dsp > base.resources().dsp

    def test_with_extra_unknown_unit(self):
        with pytest.raises(HardwareError):
            minimal_config().with_extra_unit("gpu")

    def test_zero_units_rejected(self):
        with pytest.raises(HardwareError):
            AcceleratorConfig(unit_counts={UNIT_MATMUL: 0, UNIT_QR: 1})

    def test_resources_include_infrastructure(self):
        from repro.hw import DEFAULT_TEMPLATES, INFRASTRUCTURE

        config = minimal_config()
        total = config.resources()
        units_only = sum(
            (t.resources for t in DEFAULT_TEMPLATES.values()),
            Resources(),
        )
        assert total.lut == units_only.lut + INFRASTRUCTURE.lut

    def test_buffer_adds_bram(self):
        small = AcceleratorConfig(buffer_kib=4)
        big = AcceleratorConfig(buffer_kib=1024)
        assert big.resources().bram > small.resources().bram

    def test_describe_mentions_units(self):
        text = minimal_config().describe()
        assert "matmul" in text and "qr" in text
