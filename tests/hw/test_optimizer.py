"""Tests for the Equ. 5 constraint-based hardware optimizer."""

import numpy as np
import pytest

from repro.errors import HardwareError
from repro.compiler import compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.hw import (
    Resources,
    ZC706,
    dsp_budget,
    generate_accelerator,
    minimal_config,
    sweep_dsp_constraints,
)
from repro.sim import Simulator


def workload(n=6, seed=0):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values).program


class TestGeneration:
    def test_result_fits_budget(self):
        program = workload()
        result = generate_accelerator(program, ZC706)
        assert result.config.fits(ZC706)

    def test_objective_improves_or_stays(self):
        program = workload()
        result = generate_accelerator(program, ZC706)
        base = Simulator(minimal_config()).run(program, "ooo").total_cycles
        assert result.objective <= base

    def test_steps_monotone(self):
        program = workload()
        result = generate_accelerator(program, ZC706)
        for step in result.steps:
            assert step.objective_after < step.objective_before

    def test_tight_budget_yields_minimal(self):
        program = workload()
        minimal_res = minimal_config().resources()
        # A budget exactly at the minimal config leaves no room to grow.
        result = generate_accelerator(program, minimal_res)
        assert result.num_steps == 0
        assert result.config.unit_counts == minimal_config().unit_counts

    def test_infeasible_budget_rejected(self):
        with pytest.raises(HardwareError):
            generate_accelerator(workload(), Resources(dsp=10))

    def test_unknown_objective_rejected(self):
        with pytest.raises(HardwareError):
            generate_accelerator(workload(), ZC706, objective="area")

    def test_energy_objective_runs(self):
        program = workload(4)
        result = generate_accelerator(program, ZC706, objective="energy",
                                      max_steps=3)
        assert result.objective > 0.0


class TestDspSweep:
    def test_more_dsp_never_slower(self):
        program = workload()
        sweep = sweep_dsp_constraints(program, [420, 600, 900])
        latencies = [sweep[d].objective for d in (420, 600, 900)]
        assert latencies[0] >= latencies[1] >= latencies[2]

    def test_dsp_budget_only_constrains_dsp(self):
        budget = dsp_budget(500)
        assert budget.dsp == 500
        assert budget.lut >= 10**9
