"""Tests for multi-program generation objectives (average vs tail)."""

import numpy as np
import pytest

from repro.errors import HardwareError
from repro.compiler import compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.hw import ZC706, generate_accelerator, minimal_config
from repro.sim import Simulator


def frame_program(n, seed):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 0.1))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values).program


@pytest.fixture(scope="module")
def mixed_frames():
    # Mostly small frames plus one heavy outlier frame: the tail case.
    return [frame_program(3, s) for s in range(3)] + [frame_program(10, 9)]


class TestMultiProgramObjectives:
    def test_tail_objective_optimizes_worst_frame(self, mixed_frames):
        result = generate_accelerator(mixed_frames, ZC706,
                                      objective="tail", max_steps=4)
        sim = Simulator(result.config)
        worst = max(sim.run(p, "ooo").total_cycles for p in mixed_frames)
        base = Simulator(minimal_config())
        worst_base = max(base.run(p, "ooo").total_cycles
                         for p in mixed_frames)
        assert worst <= worst_base
        assert result.objective == pytest.approx(worst)

    def test_average_objective_is_mean(self, mixed_frames):
        result = generate_accelerator(mixed_frames, ZC706,
                                      objective="latency", max_steps=2)
        sim = Simulator(result.config)
        mean = np.mean([sim.run(p, "ooo").total_cycles
                        for p in mixed_frames])
        assert result.objective == pytest.approx(mean)

    def test_single_program_still_accepted(self):
        program = frame_program(3, 0)
        result = generate_accelerator(program, ZC706, objective="tail",
                                      max_steps=1)
        assert result.objective > 0

    def test_empty_program_list_rejected(self):
        with pytest.raises(HardwareError):
            generate_accelerator([], ZC706)

    def test_unknown_objective_rejected(self):
        with pytest.raises(HardwareError):
            generate_accelerator(frame_program(3, 0), ZC706,
                                 objective="area")
