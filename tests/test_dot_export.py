"""Tests for the DOT/graphviz export utilities."""

import numpy as np
import pytest

from repro.compiler import MoDFG, compile_graph, factor_expression
from repro.compiler.dot import modfg_to_dot, program_to_dot
from repro.factorgraph import FactorGraph, Isotropic, Values, X, Y
from repro.factorgraph.dot import graph_to_dot, linear_graph_to_dot
from repro.factors import BetweenFactor, GPSFactor, PriorFactor
from repro.geometry import Pose


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(0)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(2),
                                     Isotropic(3, 0.1))])
    values = Values({X(0): Pose.identity(2)})
    for i in range(2):
        graph.add(BetweenFactor(X(i + 1), X(i), Pose.random(2, rng)))
        values.insert(X(i + 1), Pose.random(2, rng))
    graph.add(GPSFactor(X(1), np.zeros(2), Isotropic(2, 0.5)))
    return graph, values


class TestFactorGraphDot:
    def test_bipartite_structure(self, problem):
        graph, _ = problem
        dot = graph_to_dot(graph, title="test")
        assert dot.startswith("graph factorgraph {")
        assert dot.rstrip().endswith("}")
        assert '"x0" [shape=circle' in dot
        assert "shape=box" in dot
        assert '"f0" -- "x0";' in dot
        assert 'label="test"' in dot

    def test_factor_labels_strip_suffix(self, problem):
        graph, _ = problem
        dot = graph_to_dot(graph)
        assert 'label="Between"' in dot
        assert 'label="GPS"' in dot

    def test_linear_graph_dot(self, problem):
        graph, values = problem
        dot = linear_graph_to_dot(graph.linearize(values))
        assert 'label="3r"' in dot  # the prior's 3-row block


class TestModfgDot:
    def test_between_modfg(self):
        factor = BetweenFactor(X(0), X(1), Pose.identity(3))
        dfg = MoDFG(factor_expression(factor))
        dot = modfg_to_dot(dfg, title="Equ. 4")
        assert dot.startswith("digraph modfg {")
        for mark in ('label="RR"', 'label="RT"', 'label="Log"'):
            assert mark in dot
        assert "->" in dot

    def test_leaf_coloring(self):
        factor = BetweenFactor(X(0), X(1), Pose.identity(3))
        dfg = MoDFG(factor_expression(factor))
        dot = modfg_to_dot(dfg)
        assert "lightblue" in dot    # variable leaves
        assert "lightyellow" in dot  # measurement constants


class TestProgramDot:
    def test_phases_colored_and_ranked(self, problem):
        graph, values = problem
        compiled = compile_graph(graph, values)
        dot = program_to_dot(compiled.program, title="program")
        assert "salmon" in dot       # decompose phase
        assert "lightgreen" in dot   # backsub phase
        assert "rank=same" in dot

    def test_consts_hidden_by_default(self, problem):
        graph, values = problem
        compiled = compile_graph(graph, values)
        assert 'label="const"' not in program_to_dot(compiled.program)
        assert 'label="const"' in program_to_dot(compiled.program,
                                                 include_consts=True)

    def test_truncation(self, problem):
        graph, values = problem
        compiled = compile_graph(graph, values)
        dot = program_to_dot(compiled.program, max_instructions=5)
        assert dot.count("style=filled") == 5
