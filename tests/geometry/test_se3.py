"""Tests for SE(3)/se(3) and the Fig. 8 conversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import (
    SE3,
    Pose,
    pose_to_se3,
    pose_to_se3_algebra,
    se3_algebra_to_pose,
    se3_exp,
    se3_log,
    se3_to_pose,
    so3,
)


def random_se3(seed):
    rng = np.random.default_rng(seed)
    return SE3.from_rt(so3.random_rotation(rng), rng.standard_normal(3))


se3_strategy = st.integers(0, 10_000).map(random_se3)
twist_strategy = st.lists(
    st.floats(-2.0, 2.0, allow_nan=False), min_size=6, max_size=6
).map(np.array)


class TestSE3Group:
    def test_identity(self):
        assert np.allclose(SE3.identity().matrix, np.eye(4))

    def test_constructor_validates_bottom_row(self):
        m = np.eye(4)
        m[3, 0] = 1.0
        with pytest.raises(GeometryError):
            SE3(m)

    def test_constructor_validates_rotation(self):
        m = np.eye(4)
        m[0, 0] = 2.0
        with pytest.raises(GeometryError):
            SE3(m)

    def test_compose_inverse(self):
        t = random_se3(0)
        assert t.compose(t.inverse()).almost_equal(SE3.identity(), tol=1e-9)

    def test_between(self):
        a, b = random_se3(1), random_se3(2)
        assert a.compose(a.between(b)).almost_equal(b, tol=1e-9)

    def test_transform_point(self):
        t = SE3.from_rt(np.eye(3), np.array([1.0, 2.0, 3.0]))
        assert np.allclose(t.transform_point(np.zeros(3)), [1.0, 2.0, 3.0])

    @settings(max_examples=25, deadline=None)
    @given(se3_strategy, se3_strategy)
    def test_compose_matches_matrix_product(self, a, b):
        assert np.allclose(a.compose(b).matrix, a.matrix @ b.matrix)


class TestSe3Maps:
    def test_exp_zero(self):
        assert se3_exp(np.zeros(6)).almost_equal(SE3.identity())

    def test_log_inverts_exp(self):
        xi = np.array([0.5, -0.2, 0.8, 0.3, 0.1, -0.4])
        assert np.allclose(se3_log(se3_exp(xi)), xi, atol=1e-9)

    def test_pure_translation_twist(self):
        xi = np.array([1.0, 2.0, 3.0, 0.0, 0.0, 0.0])
        t = se3_exp(xi)
        assert np.allclose(t.rotation, np.eye(3))
        assert np.allclose(t.t, [1.0, 2.0, 3.0])

    def test_exp_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            se3_exp(np.zeros(5))

    @settings(max_examples=40, deadline=None)
    @given(twist_strategy)
    def test_exp_log_roundtrip_property(self, xi):
        norm = np.linalg.norm(xi[3:])
        if norm >= np.pi - 1e-2:
            xi = xi.copy()
            xi[3:] *= (np.pi - 1e-2) / norm
        assert np.allclose(se3_log(se3_exp(xi)), xi, atol=1e-7)


class TestConversions:
    """The three-way equivalences of Fig. 8."""

    def test_pose_se3_roundtrip(self):
        rng = np.random.default_rng(3)
        pose = Pose.random(3, rng)
        assert se3_to_pose(pose_to_se3(pose)).almost_equal(pose, tol=1e-9)

    def test_se3_pose_roundtrip(self):
        t = random_se3(4)
        assert pose_to_se3(se3_to_pose(t)).almost_equal(t, tol=1e-9)

    def test_pose_algebra_roundtrip(self):
        rng = np.random.default_rng(5)
        pose = Pose.random(3, rng)
        assert se3_algebra_to_pose(pose_to_se3_algebra(pose)).almost_equal(
            pose, tol=1e-9
        )

    def test_triangle_consistency(self):
        # pose -> SE3 -> se3 must agree with pose -> se3 directly.
        rng = np.random.default_rng(6)
        pose = Pose.random(3, rng)
        via_group = se3_log(pose_to_se3(pose))
        direct = pose_to_se3_algebra(pose)
        assert np.allclose(via_group, direct, atol=1e-8)

    def test_composition_agrees_across_representations(self):
        # (a (+) b) in unified form == matrix product in SE(3), mapped back.
        rng = np.random.default_rng(7)
        a, b = Pose.random(3, rng), Pose.random(3, rng)
        unified = a.compose(b)
        via_se3 = se3_to_pose(pose_to_se3(a).compose(pose_to_se3(b)))
        assert unified.almost_equal(via_se3, tol=1e-8)

    def test_ominus_agrees_with_se3_between(self):
        rng = np.random.default_rng(8)
        a, b = Pose.random(3, rng), Pose.random(3, rng)
        unified = a.ominus(b)
        via_se3 = se3_to_pose(pose_to_se3(b).between(pose_to_se3(a)))
        assert unified.almost_equal(via_se3, tol=1e-8)

    def test_conversion_requires_3d(self):
        with pytest.raises(GeometryError):
            pose_to_se3(Pose.identity(2))
        with pytest.raises(GeometryError):
            pose_to_se3_algebra(Pose.identity(2))
