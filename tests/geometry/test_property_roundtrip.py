"""Property tests: retract/local round-trips on SO(2), SO(3), SE(3).

The optimizer contract (Sec. 2) requires ``local(x, retract(x, d)) == d``
for tangent steps inside the injectivity radius, and
``retract(x, local(x, y)) == y`` for any pair of group elements.  These
are randomized but deterministic: hypothesis draws integer seeds that
feed ``np.random.default_rng``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.factorgraph.values import local_value, retract_value, value_dim
from repro.geometry import Pose, se3, so2, so3

SEEDS = st.integers(0, 10_000)


class TestSO2:
    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_exp_log_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        theta = rng.uniform(-np.pi + 1e-6, np.pi - 1e-6)
        assert np.isclose(so2.log(so2.exp(theta)), theta, atol=1e-12)

    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_exp_is_rotation(self, seed):
        rng = np.random.default_rng(seed)
        r = so2.exp(rng.uniform(-10, 10))
        assert so2.is_rotation(r)


class TestSO3:
    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_exp_log_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        phi = rng.standard_normal(3)
        norm = np.linalg.norm(phi)
        if norm >= np.pi:  # stay inside the injectivity radius
            phi *= (np.pi - 1e-3) / norm
        assert np.allclose(so3.log(so3.exp(phi)), phi, atol=1e-9)

    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_exp_is_rotation(self, seed):
        rng = np.random.default_rng(seed)
        assert so3.is_rotation(so3.exp(rng.standard_normal(3)))


class TestSE3:
    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_exp_log_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        xi = 0.5 * rng.standard_normal(6)
        assert np.allclose(se3.se3_log(se3.se3_exp(xi)), xi, atol=1e-9)

    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_pose_conversion_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        pose = Pose.random(3, rng)
        back = se3.se3_to_pose(se3.pose_to_se3(pose))
        assert np.allclose(back.rotation, pose.rotation, atol=1e-9)
        assert np.allclose(back.t, pose.t, atol=1e-9)


class TestPoseRetractLocal:
    @given(seed=SEEDS, space=st.sampled_from([2, 3]))
    @settings(max_examples=30, deadline=None)
    def test_local_of_retract_is_identity(self, seed, space):
        rng = np.random.default_rng(seed)
        x = Pose.random(space, rng)
        delta = 0.2 * rng.standard_normal(x.dim)
        assert np.allclose(x.local(x.retract(delta)), delta, atol=1e-8)

    @given(seed=SEEDS, space=st.sampled_from([2, 3]))
    @settings(max_examples=30, deadline=None)
    def test_retract_of_local_reaches_target(self, seed, space):
        rng = np.random.default_rng(seed)
        x, y = Pose.random(space, rng), Pose.random(space, rng)
        z = x.retract(x.local(y))
        assert np.allclose(z.rotation, y.rotation, atol=1e-8)
        assert np.allclose(z.t, y.t, atol=1e-8)

    @given(seed=SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_value_level_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        for value in (Pose.random(3, rng), rng.standard_normal(4)):
            delta = 0.1 * rng.standard_normal(value_dim(value))
            stepped = retract_value(value, delta)
            assert np.allclose(local_value(value, stepped), delta,
                               atol=1e-8)
