"""Tests for the unified pose representation <so(n), T(n)>."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import Pose, interpolate, poses_to_matrix, so3


def random_pose3(seed):
    rng = np.random.default_rng(seed)
    return Pose.random(3, rng)


pose3_strategy = st.integers(0, 10_000).map(random_pose3)
pose2_strategy = st.integers(0, 10_000).map(
    lambda s: Pose.random(2, np.random.default_rng(s))
)


class TestConstruction:
    def test_identity_2d(self):
        p = Pose.identity(2)
        assert p.n == 2 and p.dim == 3
        assert np.allclose(p.rotation, np.eye(2))

    def test_identity_3d(self):
        p = Pose.identity(3)
        assert p.n == 3 and p.dim == 6

    def test_identity_rejects_other_dims(self):
        with pytest.raises(GeometryError):
            Pose.identity(4)

    def test_from_xytheta(self):
        p = Pose.from_xytheta(1.0, 2.0, 0.5)
        assert np.allclose(p.t, [1.0, 2.0])
        assert np.isclose(p.phi[0], 0.5)

    def test_from_rotation_3d(self):
        r = so3.exp(np.array([0.1, 0.2, 0.3]))
        p = Pose.from_rotation(r, np.zeros(3))
        assert np.allclose(p.rotation, r)

    def test_bad_shapes_rejected(self):
        with pytest.raises(GeometryError):
            Pose(np.zeros(2), np.zeros(3))

    def test_vector_roundtrip(self):
        p = Pose(np.array([0.1, 0.2, 0.3]), np.array([1.0, 2.0, 3.0]))
        q = Pose.from_vector(p.vector())
        assert p.almost_equal(q)

    def test_from_vector_rejects_bad_length(self):
        with pytest.raises(GeometryError):
            Pose.from_vector(np.zeros(5))


class TestGroupOps:
    def test_compose_with_identity(self):
        p = random_pose3(1)
        assert p.compose(Pose.identity(3)).almost_equal(p)
        assert Pose.identity(3).compose(p).almost_equal(p)

    def test_compose_matches_matrix_product(self):
        a, b = random_pose3(2), random_pose3(3)
        c = a.compose(b)
        assert np.allclose(c.rotation, a.rotation @ b.rotation)
        assert np.allclose(c.t, a.t + a.rotation @ b.t)

    def test_ominus_is_inverse_of_compose(self):
        a, b = random_pose3(4), random_pose3(5)
        diff = a.compose(b).ominus(a)
        assert diff.almost_equal(b, tol=1e-8)

    def test_inverse(self):
        p = random_pose3(6)
        assert p.compose(p.inverse()).almost_equal(Pose.identity(3), tol=1e-9)
        assert p.inverse().compose(p).almost_equal(Pose.identity(3), tol=1e-9)

    def test_self_difference_is_identity(self):
        p = random_pose3(7)
        assert p.ominus(p).almost_equal(Pose.identity(3), tol=1e-9)

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(GeometryError):
            Pose.identity(2).compose(Pose.identity(3))

    def test_transform_point(self):
        p = Pose.from_xytheta(1.0, 0.0, np.pi / 2)
        assert np.allclose(p.transform_point(np.array([1.0, 0.0])), [1.0, 1.0])

    def test_transform_point_bad_shape(self):
        with pytest.raises(GeometryError):
            Pose.identity(3).transform_point(np.zeros(2))

    @settings(max_examples=30, deadline=None)
    @given(pose3_strategy, pose3_strategy, pose3_strategy)
    def test_compose_associative(self, a, b, c):
        lhs = a.compose(b).compose(c)
        rhs = a.compose(b.compose(c))
        assert lhs.almost_equal(rhs, tol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(pose2_strategy, pose2_strategy)
    def test_ominus_compose_roundtrip_2d(self, a, b):
        assert a.compose(b).ominus(a).almost_equal(b, tol=1e-8)


class TestChart:
    def test_retract_zero_is_noop(self):
        p = random_pose3(8)
        assert p.retract(np.zeros(6)).almost_equal(p)

    def test_local_inverts_retract_3d(self):
        p = random_pose3(9)
        delta = np.array([0.1, -0.2, 0.05, 1.0, 2.0, -0.5])
        assert np.allclose(p.local(p.retract(delta)), delta, atol=1e-8)

    def test_local_inverts_retract_2d(self):
        p = Pose.from_xytheta(1.0, -1.0, 0.3)
        delta = np.array([0.4, 0.6, -0.2])
        assert np.allclose(p.local(p.retract(delta)), delta, atol=1e-10)

    def test_retract_wraps_heading(self):
        p = Pose.from_xytheta(0.0, 0.0, np.pi - 0.1)
        q = p.retract(np.array([0.3, 0.0, 0.0]))
        assert -np.pi <= q.phi[0] <= np.pi

    def test_retract_bad_shape(self):
        with pytest.raises(GeometryError):
            Pose.identity(3).retract(np.zeros(3))

    @settings(max_examples=30, deadline=None)
    @given(pose3_strategy, pose3_strategy)
    def test_local_retract_roundtrip_property(self, a, b):
        assert a.retract(a.local(b)).almost_equal(b, tol=1e-8)


class TestHelpers:
    def test_interpolate_endpoints(self):
        a, b = random_pose3(10), random_pose3(11)
        assert interpolate(a, b, 0.0).almost_equal(a)
        assert interpolate(a, b, 1.0).almost_equal(b, tol=1e-8)

    def test_interpolate_midpoint_translation(self):
        a = Pose.identity(3)
        b = Pose(np.zeros(3), np.array([2.0, 0.0, 0.0]))
        mid = interpolate(a, b, 0.5)
        assert np.allclose(mid.t, [1.0, 0.0, 0.0])

    def test_poses_to_matrix(self):
        mat = poses_to_matrix([Pose.identity(3), random_pose3(12)])
        assert mat.shape == (2, 6)

    def test_poses_to_matrix_empty(self):
        assert poses_to_matrix([]).shape == (0, 0)
