"""Tests for the quaternion representation (Sec. 4.1 survey)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import quaternion as quat
from repro.geometry import so3


def random_q(seed):
    return quat.random_quaternion(np.random.default_rng(seed))


q_strategy = st.integers(0, 10_000).map(random_q)
phi_strategy = st.lists(st.floats(-2.5, 2.5, allow_nan=False),
                        min_size=3, max_size=3).map(np.array)


class TestBasics:
    def test_identity(self):
        assert np.allclose(quat.to_rotation(quat.identity()), np.eye(3))

    def test_normalize_canonical_sign(self):
        q = quat.normalize(np.array([-1.0, 0.0, 0.0, 0.0]))
        assert q[0] == 1.0

    def test_normalize_rejects_zero(self):
        with pytest.raises(GeometryError):
            quat.normalize(np.zeros(4))

    def test_normalize_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            quat.normalize(np.zeros(3))

    def test_conjugate_is_inverse(self):
        q = random_q(0)
        prod = quat.multiply(q, quat.conjugate(q))
        assert np.allclose(prod, quat.identity(), atol=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(q_strategy, q_strategy)
    def test_multiply_matches_matrix_product(self, q1, q2):
        lhs = quat.to_rotation(quat.multiply(q1, q2))
        rhs = quat.to_rotation(q1) @ quat.to_rotation(q2)
        assert np.allclose(lhs, rhs, atol=1e-10)

    @settings(max_examples=30, deadline=None)
    @given(q_strategy)
    def test_rotate_matches_matrix(self, q):
        v = np.array([0.3, -1.2, 2.0])
        assert np.allclose(quat.rotate(q, v), quat.to_rotation(q) @ v,
                           atol=1e-10)

    def test_rotate_rejects_bad_vector(self):
        with pytest.raises(GeometryError):
            quat.rotate(quat.identity(), np.zeros(2))


class TestConversions:
    @settings(max_examples=40, deadline=None)
    @given(q_strategy)
    def test_rotation_roundtrip(self, q):
        back = quat.from_rotation(quat.to_rotation(q))
        assert np.allclose(back, quat.normalize(q), atol=1e-9)

    def test_from_rotation_near_pi(self):
        # Trace <= 0 branch of Shepperd's method.
        for axis in np.eye(3):
            r = so3.exp(np.pi * axis)
            q = quat.from_rotation(r)
            assert np.allclose(quat.to_rotation(q), r, atol=1e-9)

    def test_from_rotation_bad_shape(self):
        with pytest.raises(GeometryError):
            quat.from_rotation(np.eye(2))

    @settings(max_examples=40, deadline=None)
    @given(phi_strategy)
    def test_exp_log_roundtrip(self, phi):
        norm = np.linalg.norm(phi)
        if norm >= np.pi - 1e-3:
            phi = phi * (np.pi - 1e-3) / norm
        assert np.allclose(quat.log(quat.exp(phi)), phi, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(phi_strategy)
    def test_exp_agrees_with_so3(self, phi):
        assert np.allclose(quat.to_rotation(quat.exp(phi)), so3.exp(phi),
                           atol=1e-10)

    def test_small_angle_branches(self):
        tiny = np.array([1e-12, 0.0, 0.0])
        assert np.allclose(quat.log(quat.exp(tiny)), tiny, atol=1e-15)

    def test_bridge_functions(self):
        phi = np.array([0.2, -0.4, 0.6])
        assert np.allclose(quat.quat_to_so3(quat.so3_to_quat(phi)), phi,
                           atol=1e-10)

    def test_exp_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            quat.exp(np.zeros(4))


class TestSlerp:
    def test_endpoints(self):
        q1, q2 = random_q(1), random_q(2)
        assert np.allclose(quat.slerp(q1, q2, 0.0), quat.normalize(q1),
                           atol=1e-10)
        assert np.allclose(quat.slerp(q1, q2, 1.0), quat.normalize(q2),
                           atol=1e-10)

    def test_midpoint_is_half_angle(self):
        q1 = quat.identity()
        q2 = quat.exp(np.array([0.0, 0.0, 1.0]))
        mid = quat.slerp(q1, q2, 0.5)
        assert np.allclose(quat.log(mid), [0.0, 0.0, 0.5], atol=1e-10)

    def test_result_is_unit(self):
        assert quat.is_unit(quat.slerp(random_q(3), random_q(4), 0.37))


class TestIsUnit:
    def test_detects_non_unit(self):
        assert not quat.is_unit(np.array([2.0, 0.0, 0.0, 0.0]))
        assert not quat.is_unit(np.zeros(3))
        assert quat.is_unit(quat.identity())
