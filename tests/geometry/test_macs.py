"""Tests for the Sec. 4.3 MAC cost model."""

import pytest

from repro.geometry import macs


class TestPrimitiveCosts:
    def test_matmul_cost(self):
        assert macs.matmul(3, 3, 3).macs == 27
        assert macs.matmul(4, 4, 4).macs == 64

    def test_matvec_cost(self):
        assert macs.matvec(3, 3).macs == 9

    def test_counts_add_and_scale(self):
        total = macs.matmul(3, 3, 3) + 2 * macs.matvec(3, 3)
        assert total.macs == 27 + 18

    def test_se3_exp_costlier_than_so3(self):
        assert macs.exp_se3().macs > macs.exp_so3().macs

    def test_se3_compose_costlier(self):
        assert macs.compose_se3().macs > macs.compose_unified().macs


class TestWorkload:
    def test_iteration_scales_linearly(self):
        one = macs.pose_graph_iteration(1, "unified").macs
        ten = macs.pose_graph_iteration(10, "unified").macs
        assert ten == 10 * one

    def test_unknown_representation_rejected(self):
        with pytest.raises(ValueError):
            macs.pose_graph_iteration(1, "quaternion")

    def test_savings_in_papers_ballpark(self):
        # Paper reports 52.7% MAC savings; the cost model should land in
        # the same regime (a >35% saving with SE(3) clearly dominated).
        saving = macs.mac_savings()
        assert 0.35 < saving < 0.70

    def test_savings_independent_of_graph_size(self):
        assert macs.mac_savings(10) == pytest.approx(macs.mac_savings(1000))
