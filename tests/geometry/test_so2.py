"""Tests for the planar rotation primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import so2

angles = st.floats(-10.0, 10.0, allow_nan=False)


class TestExpLog:
    def test_exp_zero(self):
        assert np.allclose(so2.exp(0.0), np.eye(2))

    def test_exp_quarter_turn(self):
        r = so2.exp(np.pi / 2)
        assert np.allclose(r @ np.array([1.0, 0.0]), [0.0, 1.0])

    def test_log_of_exp(self):
        assert np.isclose(so2.log(so2.exp(0.7)), 0.7)

    def test_log_wraps(self):
        assert np.isclose(so2.log(so2.exp(2 * np.pi + 0.1)), 0.1)

    def test_log_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            so2.log(np.eye(3))

    @settings(max_examples=50, deadline=None)
    @given(angles)
    def test_exp_is_rotation_property(self, theta):
        assert so2.is_rotation(so2.exp(theta))

    @settings(max_examples=50, deadline=None)
    @given(angles, angles)
    def test_exp_is_homomorphism(self, a, b):
        assert np.allclose(so2.exp(a) @ so2.exp(b), so2.exp(a + b), atol=1e-9)


class TestSkew:
    def test_skew_is_generator_scaled(self):
        assert np.allclose(so2.skew(2.0), 2.0 * so2.GENERATOR)

    def test_vee_inverts_skew(self):
        assert np.isclose(so2.vee(so2.skew(-1.3)), -1.3)

    def test_vee_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            so2.vee(np.eye(3))

    def test_generator_is_derivative_of_exp(self):
        eps = 1e-7
        numeric = (so2.exp(eps) - np.eye(2)) / eps
        assert np.allclose(numeric, so2.GENERATOR, atol=1e-6)


class TestJacobians:
    def test_right_jacobian_identity(self):
        assert np.allclose(so2.right_jacobian(1.2), np.eye(1))
        assert np.allclose(so2.right_jacobian_inv(-0.5), np.eye(1))


class TestWrap:
    def test_wrap_inside_range(self):
        assert np.isclose(so2.wrap_angle(1.0), 1.0)

    def test_wrap_large_angle(self):
        assert np.isclose(so2.wrap_angle(3 * np.pi), np.pi)

    @settings(max_examples=50, deadline=None)
    @given(angles)
    def test_wrap_preserves_rotation(self, theta):
        assert np.allclose(so2.exp(so2.wrap_angle(theta)), so2.exp(theta), atol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(angles)
    def test_wrap_range(self, theta):
        w = so2.wrap_angle(theta)
        assert -np.pi - 1e-12 <= w <= np.pi + 1e-12
