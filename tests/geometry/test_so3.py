"""Unit and property tests for the SO(3) primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry import so3


def small_vectors(max_norm=3.0):
    return st.lists(
        st.floats(-max_norm, max_norm, allow_nan=False), min_size=3, max_size=3
    ).map(np.array)


class TestSkew:
    def test_skew_antisymmetric(self):
        k = so3.skew(np.array([1.0, 2.0, 3.0]))
        assert np.allclose(k, -k.T)

    def test_skew_cross_product(self):
        v = np.array([1.0, -2.0, 0.5])
        w = np.array([0.3, 4.0, -1.0])
        assert np.allclose(so3.skew(v) @ w, np.cross(v, w))

    def test_vee_inverts_skew(self):
        v = np.array([0.1, 0.2, 0.3])
        assert np.allclose(so3.vee(so3.skew(v)), v)

    def test_skew_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            so3.skew(np.zeros(4))

    def test_vee_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            so3.vee(np.zeros((2, 2)))


class TestExpLog:
    def test_exp_zero_is_identity(self):
        assert np.allclose(so3.exp(np.zeros(3)), np.eye(3))

    def test_exp_is_rotation(self):
        r = so3.exp(np.array([0.4, -0.8, 1.2]))
        assert so3.is_rotation(r)

    def test_exp_quarter_turn_z(self):
        r = so3.exp(np.array([0.0, 0.0, np.pi / 2]))
        assert np.allclose(r @ np.array([1.0, 0.0, 0.0]), [0.0, 1.0, 0.0])

    def test_log_identity_is_zero(self):
        assert np.allclose(so3.log(np.eye(3)), np.zeros(3))

    def test_log_inverts_exp_generic(self):
        phi = np.array([0.7, -0.3, 0.5])
        assert np.allclose(so3.log(so3.exp(phi)), phi)

    def test_log_near_pi(self):
        phi = (np.pi - 1e-8) * np.array([1.0, 0.0, 0.0])
        recovered = so3.log(so3.exp(phi))
        assert np.allclose(so3.exp(recovered), so3.exp(phi), atol=1e-6)

    def test_log_exactly_pi_each_axis(self):
        for axis in np.eye(3):
            phi = np.pi * axis
            recovered = so3.log(so3.exp(phi))
            assert np.allclose(so3.exp(recovered), so3.exp(phi), atol=1e-6)

    def test_small_angle_taylor_branch(self):
        phi = np.array([1e-9, -2e-9, 5e-10])
        assert np.allclose(so3.log(so3.exp(phi)), phi, atol=1e-15)

    def test_exp_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            so3.exp(np.zeros(2))

    def test_log_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            so3.log(np.zeros((4, 4)))

    @settings(max_examples=60, deadline=None)
    @given(small_vectors())
    def test_exp_log_roundtrip_property(self, phi):
        norm = np.linalg.norm(phi)
        if norm >= np.pi - 1e-3:
            phi = phi * (np.pi - 1e-3) / norm
        assert np.allclose(so3.log(so3.exp(phi)), phi, atol=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(small_vectors(), small_vectors())
    def test_exp_homomorphism_on_parallel_vectors(self, phi, _unused):
        # Exp((a+b) v) = Exp(a v) Exp(b v) for parallel rotation vectors.
        assert np.allclose(
            so3.exp(phi) @ so3.exp(0.5 * phi), so3.exp(1.5 * phi), atol=1e-9
        )


class TestJacobians:
    def test_right_jacobian_at_zero(self):
        assert np.allclose(so3.right_jacobian(np.zeros(3)), np.eye(3))

    def test_right_jacobian_inverse_consistency(self):
        phi = np.array([0.3, 0.9, -0.4])
        prod = so3.right_jacobian(phi) @ so3.right_jacobian_inv(phi)
        assert np.allclose(prod, np.eye(3), atol=1e-10)

    def test_right_jacobian_first_order_property(self):
        # Exp(phi + d) ~ Exp(phi) Exp(Jr(phi) d)
        phi = np.array([0.5, -0.2, 0.8])
        d = 1e-6 * np.array([1.0, -2.0, 0.5])
        lhs = so3.exp(phi + d)
        rhs = so3.exp(phi) @ so3.exp(so3.right_jacobian(phi) @ d)
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_left_jacobian_relation(self):
        phi = np.array([0.2, 0.4, -0.6])
        assert np.allclose(so3.left_jacobian(phi), so3.right_jacobian(-phi))

    def test_left_jacobian_is_se3_v_matrix(self):
        # V(phi) known closed form at axis-aligned angle.
        phi = np.array([0.0, 0.0, 1.3])
        v = so3.left_jacobian(phi)
        # V should map rho so that exp of the twist matches direct integral.
        assert v.shape == (3, 3)
        assert np.isfinite(v).all()

    def test_small_angle_jacobians(self):
        phi = np.array([1e-9, 0.0, 0.0])
        prod = so3.right_jacobian(phi) @ so3.right_jacobian_inv(phi)
        assert np.allclose(prod, np.eye(3), atol=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(small_vectors(max_norm=2.0))
    def test_jacobian_inverse_property(self, phi):
        prod = so3.right_jacobian(phi) @ so3.right_jacobian_inv(phi)
        assert np.allclose(prod, np.eye(3), atol=1e-7)


class TestHelpers:
    def test_is_rotation_rejects_reflection(self):
        m = np.diag([1.0, 1.0, -1.0])
        assert not so3.is_rotation(m)

    def test_is_rotation_rejects_bad_shape(self):
        assert not so3.is_rotation(np.eye(2))

    def test_random_rotation_is_rotation(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            assert so3.is_rotation(so3.random_rotation(rng))
