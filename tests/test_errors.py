"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_orianna_error(self):
        for name in ("GeometryError", "GraphError", "LinearizationError",
                     "OptimizationError", "CompileError", "ExecutionError",
                     "HardwareError", "SimulationError"):
            exc = getattr(errors, name)
            assert issubclass(exc, errors.OriannaError)
            assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(errors.OriannaError):
            raise errors.CompileError("boom")

    def test_distinct_classes(self):
        assert not issubclass(errors.GeometryError, errors.GraphError)
        assert not issubclass(errors.HardwareError,
                              errors.SimulationError)
