"""Smoke tests: every example script runs cleanly via its main()."""

import contextlib
import importlib.util
import io
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_example(name):
    module = load_example(name)
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        module.main()
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "converged: True" in out
        assert "mm" in out

    def test_localization_slam(self):
        out = run_example("localization_slam.py")
        assert "ATE before" in out and "ATE after" in out
        # The loop closure must reduce the error substantially.
        before = float(out.split("ATE before: mean ")[1].split(" ")[0])
        after = float(out.split("ATE after:  mean ")[1].split(" ")[0])
        assert after < before / 2

    def test_motion_planning(self):
        out = run_example("motion_planning.py")
        assert "collision-free" in out
        assert "IN COLLISION" not in out

    def test_mpc_control(self):
        out = run_example("mpc_control.py")
        assert "difference:" in out
        diff = float(out.strip().split("difference: ")[1])
        assert diff < 1e-4  # factor graph == Riccati

    def test_incremental_slam(self):
        out = run_example("incremental_slam.py")
        assert "re-eliminated" in out
        mean_error = float(out.split("mean error: ")[1].split(" ")[0])
        assert mean_error < 0.5

    def test_sphere_validation(self):
        out = run_example("sphere_validation.py")
        assert "loses no accuracy" in out
        diff = float(out.split("mean-ATE difference: ")[1].split(" ")[0])
        assert diff < 1e-6

    def test_accelerator_generation_imports(self):
        # The full generation flow runs for minutes; the benchmark suite
        # covers it.  Here we only check the script is importable.
        module = load_example("accelerator_generation.py")
        assert hasattr(module, "main")
