"""Tests for workload generators."""

import numpy as np
import pytest

from repro.apps import workloads
from repro.apps.seeding import stable_seed
from repro.geometry import Pose


class TestSeeding:
    def test_stable_across_calls(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_different_labels_differ(self):
        assert stable_seed("a", 1) != stable_seed("a", 2)
        assert stable_seed("a", 1) != stable_seed("b", 1)

    def test_in_32bit_range(self):
        s = stable_seed("anything", 123, "more")
        assert 0 <= s < 2**32


class TestTrajectories:
    def test_planar_length_and_type(self):
        rng = np.random.default_rng(0)
        traj = workloads.planar_trajectory(10, rng)
        assert len(traj) == 10
        assert all(p.n == 2 for p in traj)

    def test_planar_moves_forward(self):
        rng = np.random.default_rng(1)
        traj = workloads.planar_trajectory(10, rng, step=1.0)
        assert np.linalg.norm(traj[-1].t - traj[0].t) > 1.0

    def test_spatial_length_and_type(self):
        rng = np.random.default_rng(2)
        traj = workloads.spatial_trajectory(8, rng)
        assert len(traj) == 8
        assert all(p.n == 3 for p in traj)

    def test_deterministic_given_seed(self):
        a = workloads.planar_trajectory(5, np.random.default_rng(3))
        b = workloads.planar_trajectory(5, np.random.default_rng(3))
        assert all(x.almost_equal(y) for x, y in zip(a, b))


class TestSphere:
    def test_layer_structure(self):
        traj = workloads.sphere_trajectory(layers=4, points_per_layer=10,
                                           radius=20.0)
        assert len(traj) == 40
        # All points lie on the sphere.
        for p in traj:
            assert np.linalg.norm(p.t) == pytest.approx(20.0, abs=1e-9)

    def test_layers_ascend(self):
        traj = workloads.sphere_trajectory(layers=3, points_per_layer=4)
        z_per_layer = [traj[i * 4].t[2] for i in range(3)]
        assert z_per_layer[0] > z_per_layer[1] > z_per_layer[2]

    def test_each_layer_is_a_circle(self):
        traj = workloads.sphere_trajectory(layers=2, points_per_layer=8)
        ring = traj[:8]
        radii = [np.linalg.norm(p.t[:2]) for p in ring]
        assert np.allclose(radii, radii[0])


class TestCorruption:
    def test_first_pose_kept(self):
        rng = np.random.default_rng(4)
        truth = workloads.spatial_trajectory(6, rng)
        noisy = workloads.corrupt_trajectory(truth, rng)
        assert noisy[0].almost_equal(truth[0])

    def test_noise_accumulates(self):
        rng = np.random.default_rng(5)
        truth = workloads.spatial_trajectory(30, rng, step=1.0)
        noisy = workloads.corrupt_trajectory(truth, rng, 0.05, 0.2)
        early = np.linalg.norm(noisy[3].t - truth[3].t)
        late = np.linalg.norm(noisy[-1].t - truth[-1].t)
        assert late > early

    def test_zero_noise_is_exact(self):
        rng = np.random.default_rng(6)
        truth = workloads.planar_trajectory(5, rng)
        noisy = workloads.corrupt_trajectory(truth, rng, 0.0, 0.0)
        for a, b in zip(noisy, truth):
            assert a.almost_equal(b, tol=1e-9)

    def test_empty_input(self):
        assert workloads.corrupt_trajectory([], np.random.default_rng(0)) == []


class TestFieldsAndReferences:
    def test_landmarks_in_front(self):
        rng = np.random.default_rng(7)
        truth = [Pose.identity(3)]
        lm = workloads.landmark_field(truth, rng, 5)
        assert len(lm) == 5
        assert all(l.shape == (3,) for l in lm)

    def test_obstacles_keep_start_goal_clear(self):
        rng = np.random.default_rng(8)
        field = workloads.obstacle_course(rng, 5, area=10.0)
        assert field.signed_distance(np.zeros(2)) > 0.0
        assert field.signed_distance(np.array([10.0, 0.0])) > 0.0

    def test_reference_path_decays(self):
        rng = np.random.default_rng(9)
        ref = workloads.reference_path(10, 4, rng)
        assert ref.horizon == 10
        assert ref.state_dim == 4
        assert np.linalg.norm(ref.states[-1]) < np.linalg.norm(ref.states[0])


class TestAte:
    def test_errors_and_stats(self):
        truth = [Pose.identity(2), Pose.from_xytheta(1.0, 0.0, 0.0)]
        est = [Pose.from_xytheta(0.0, 1.0, 0.0),
               Pose.from_xytheta(1.0, 2.0, 0.0)]
        errors = workloads.absolute_trajectory_errors(est, truth)
        assert np.allclose(errors, [1.0, 2.0])
        stats = workloads.ate_statistics(errors)
        assert stats["max"] == pytest.approx(2.0)
        assert stats["mean"] == pytest.approx(1.5)
        assert stats["min"] == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            workloads.absolute_trajectory_errors([Pose.identity(2)], [])
