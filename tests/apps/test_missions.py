"""Tests for the mission success-rate harness (Tbl. 5)."""

import pytest

from repro.apps.missions import (
    APPLICATION_NAMES,
    MissionResult,
    ORIANNA_SOLVER,
    REFERENCE_SOLVER,
    run_mission,
    success_rate,
)


class TestMissionResult:
    def test_success_requires_all_stages(self):
        r = MissionResult("x", 0, ORIANNA_SOLVER, True, True, True)
        assert r.success
        for flags in ((False, True, True), (True, False, True),
                      (True, True, False)):
            r = MissionResult("x", 0, ORIANNA_SOLVER, *flags)
            assert not r.success


class TestRunMission:
    def test_deterministic(self):
        a = run_mission("MobileRobot", 3)
        b = run_mission("MobileRobot", 3)
        assert a.success == b.success
        assert a.localization_ok == b.localization_ok

    def test_all_applications_runnable(self):
        for app in APPLICATION_NAMES:
            r = run_mission(app, 0)
            assert isinstance(r.success, bool)

    def test_unknown_solver_fails_closed(self):
        # An invalid solver must not count as success.
        r = run_mission("MobileRobot", 0, solver="quantum")
        assert not r.success


class TestSuccessRates:
    """Small-sample sanity: most missions succeed on every application."""

    @pytest.mark.parametrize("app", APPLICATION_NAMES)
    def test_mostly_successful(self, app):
        rate = success_rate(app, num_missions=5)
        assert rate >= 0.6

    def test_solvers_mostly_agree(self):
        agreements = 0
        total = 0
        for seed in range(4):
            a = run_mission("MobileRobot", seed, ORIANNA_SOLVER)
            b = run_mission("MobileRobot", seed, REFERENCE_SOLVER)
            agreements += a.success == b.success
            total += 1
        assert agreements >= total - 1
