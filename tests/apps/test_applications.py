"""Tests for the Tbl. 4 benchmark applications and builders."""

import numpy as np
import pytest

from repro.apps import (
    CONTROL,
    LOCALIZATION,
    PLANNING,
    all_applications,
    auto_vehicle,
    manipulator,
    mobile_robot,
    quadrotor,
)
from repro.apps import builders
from repro.errors import GraphError
from repro.factorgraph import U, V, X
from repro.geometry import Pose


class TestTable4Dimensions:
    """Variable dimensions must match the paper's Tbl. 4 exactly."""

    def loc_pose_dim(self, app):
        graphs = app.build_graphs(seed=0, algorithms=[LOCALIZATION])
        _, values = graphs[LOCALIZATION]
        return values.dim(X(0))

    def planning_state_dim(self, app):
        graphs = app.build_graphs(seed=0, algorithms=[PLANNING])
        _, values = graphs[PLANNING]
        return values.dim(V(0))

    def control_dims(self, app):
        graphs = app.build_graphs(seed=0, algorithms=[CONTROL])
        _, values = graphs[CONTROL]
        return values.dim(X(0)), values.dim(U(0))

    def test_mobile_robot(self):
        app = mobile_robot()
        assert self.loc_pose_dim(app) == 3
        assert self.planning_state_dim(app) == 6
        assert self.control_dims(app) == (3, 2)

    def test_manipulator(self):
        app = manipulator()
        assert self.loc_pose_dim(app) == 2
        assert self.planning_state_dim(app) == 4
        assert self.control_dims(app) == (2, 2)

    def test_auto_vehicle(self):
        app = auto_vehicle()
        assert self.loc_pose_dim(app) == 3
        assert self.planning_state_dim(app) == 6
        assert self.control_dims(app) == (5, 2)

    def test_quadrotor(self):
        app = quadrotor()
        assert self.loc_pose_dim(app) == 6
        assert self.planning_state_dim(app) == 12
        assert self.control_dims(app) == (12, 5)


class TestTable4Factors:
    def factor_types(self, app, algorithm):
        graph, _ = app.build_graphs(seed=0, algorithms=[algorithm])[algorithm]
        return {type(f).__name__ for f in graph}

    def test_mobile_robot_factors(self):
        app = mobile_robot()
        assert "LiDARFactor" in self.factor_types(app, LOCALIZATION)
        assert "GPSFactor" in self.factor_types(app, LOCALIZATION)
        planning = self.factor_types(app, PLANNING)
        assert "CollisionFreeFactor" in planning
        assert "SmoothnessFactor" in planning
        assert "DynamicsFactor" in self.factor_types(app, CONTROL)

    def test_manipulator_prior_only_localization(self):
        app = manipulator()
        assert self.factor_types(app, LOCALIZATION) == {"PriorFactor"}

    def test_auto_vehicle_kinematics(self):
        app = auto_vehicle()
        assert "VelocityLimitFactor" in self.factor_types(app, PLANNING)
        assert "KinematicsFactor" in self.factor_types(app, CONTROL)

    def test_quadrotor_camera_imu(self):
        app = quadrotor()
        loc = self.factor_types(app, LOCALIZATION)
        assert "CameraFactor" in loc
        assert "IMUFactor" in loc


class TestApplicationApi:
    def test_all_applications_in_paper_order(self):
        names = [a.name for a in all_applications()]
        assert names == ["MobileRobot", "Manipulator", "AutoVehicle",
                         "Quadrotor"]

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(GraphError):
            mobile_robot().spec("perception")

    def test_builds_are_deterministic(self):
        app = mobile_robot()
        a = app.compile_merged(seed=5)
        b = app.compile_merged(seed=5)
        assert len(a) == len(b)
        assert [i.op for i in a] == [i.op for i in b]

    def test_frame_composition_rates(self):
        app = quadrotor()  # loc 20 Hz, control 100 Hz, planning 2 Hz
        comp = app.frame_composition()
        assert comp[LOCALIZATION] == 1
        assert comp[CONTROL] == 5
        assert comp[PLANNING] == 0
        assert app.planning_period() == 10

    def test_compile_frame_replicates_control(self):
        app = quadrotor()
        prog = app.compile_frame(seed=0)
        tags = {i.algorithm for i in prog}
        control_streams = {t for t in tags if t.startswith("control")}
        assert len(control_streams) == 5

    def test_compile_frame_planning_optional(self):
        app = mobile_robot()
        without = app.compile_frame(seed=0, include_planning=False)
        with_planning = app.compile_frame(seed=0, include_planning=True)
        assert len(with_planning) > len(without)


class TestBuilders:
    def test_localization_graphs_solve(self):
        rng = np.random.default_rng(0)
        graph, values = builders.lidar_gps_localization(rng, window=6)
        result = graph.optimize(values)
        assert result.converged
        assert result.final_error < result.initial_error or (
            result.initial_error == 0.0
        )

    def test_vio_graph_solves(self):
        rng = np.random.default_rng(1)
        graph, values = builders.visual_inertial_localization(
            rng, keyframes=5, num_landmarks=4)
        result = graph.optimize(values)
        assert result.converged

    def test_models_have_documented_shapes(self):
        a, b = builders.unicycle_model()
        assert a.shape == (3, 3) and b.shape == (3, 2)
        a, b = builders.two_link_arm_model()
        assert a.shape == (2, 2) and b.shape == (2, 2)
        a, b = builders.bicycle_model()
        assert a.shape == (5, 5) and b.shape == (5, 2)
        a, b = builders.quadrotor_model()
        assert a.shape == (12, 12) and b.shape == (12, 5)

    def test_lqr_reference_is_trackable(self):
        rng = np.random.default_rng(2)
        a, b = builders.unicycle_model()
        graph, values = builders.lqr_control(rng, a, b, horizon=8)
        result = graph.optimize(values)
        assert result.converged
        assert result.final_error < 1.0
