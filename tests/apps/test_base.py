"""Tests for the application scaffolding (specs, frames, frequencies)."""

import numpy as np
import pytest

from repro.apps import (
    AlgorithmSpec,
    CONTROL,
    LOCALIZATION,
    PLANNING,
    RoboticApplication,
    mobile_robot,
)
from repro.errors import GraphError
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import PriorFactor


def tiny_builder(rng):
    graph = FactorGraph([PriorFactor(X(0), np.array([1.0, 2.0]),
                                     Isotropic(2, 0.1))])
    values = Values({X(0): rng.standard_normal(2)})
    return graph, values


class TestConstruction:
    def test_requires_algorithms(self):
        with pytest.raises(GraphError):
            RoboticApplication("empty", [])

    def test_rejects_duplicate_names(self):
        spec = AlgorithmSpec("loc", tiny_builder, 10.0)
        with pytest.raises(GraphError):
            RoboticApplication("dup", [spec, spec])

    def test_spec_lookup_and_frequency(self):
        app = RoboticApplication("one", [
            AlgorithmSpec("loc", tiny_builder, 12.5)])
        assert app.frequency("loc") == 12.5
        with pytest.raises(GraphError):
            app.spec("nav")

    def test_builder_output_validated(self):
        def broken(rng):
            graph = FactorGraph([PriorFactor(X(0), np.zeros(2))])
            return graph, Values()  # missing X(0)

        app = RoboticApplication("broken", [
            AlgorithmSpec("loc", broken, 1.0)])
        with pytest.raises(GraphError):
            app.build_graphs(seed=0)


class TestFrameComposition:
    def test_mobile_robot_rates(self):
        app = mobile_robot()  # loc 10, plan 2, control 50 Hz
        comp = app.frame_composition()
        assert comp[LOCALIZATION] == 1
        assert comp[CONTROL] == 5
        assert comp[PLANNING] == 0
        assert app.planning_period() == 5

    def test_base_algorithm_always_once(self):
        app = mobile_robot()
        comp = app.frame_composition(base=CONTROL)
        assert comp[CONTROL] == 1
        assert comp[LOCALIZATION] == 0  # slower than the base rate

    def test_planning_period_without_planning(self):
        app = RoboticApplication("loc-only", [
            AlgorithmSpec(LOCALIZATION, tiny_builder, 10.0)])
        assert app.planning_period() == 1

    def test_frame_includes_planning_when_asked(self):
        app = mobile_robot()
        with_planning = app.compile_frame(seed=0, include_planning=True)
        tags = {i.algorithm for i in with_planning}
        assert any(t.startswith(PLANNING) for t in tags)

    def test_same_seed_same_frame(self):
        app = mobile_robot()
        a = app.compile_frame(seed=1)
        b = app.compile_frame(seed=1)
        assert len(a) == len(b)
        assert [i.op for i in a] == [i.op for i in b]

    def test_different_control_repeats_differ(self):
        """Replicated control solves use distinct sensor data (seeds)."""
        app = mobile_robot()
        program = app.compile_frame(seed=0)
        from repro.compiler import Opcode

        by_stream = {}
        for i in program.instructions:
            if i.op is Opcode.CONST and i.algorithm.startswith("control"):
                by_stream.setdefault(i.algorithm, []).append(
                    np.asarray(i.meta["value"]).tobytes())
        streams = list(by_stream.values())
        assert len(streams) == 5
        assert streams[0] != streams[1]
