"""Property tests: simulated schedules are physically valid.

For random compiled programs under every issue policy, the recorded
schedule must satisfy (a) no instruction starts before its operands are
produced, (b) unit-class concurrency never exceeds the configured
instance count, and (c) every instruction's occupancy equals its modeled
latency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import Opcode, compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X, Y
from repro.factors import BetweenFactor, GPSFactor, PriorFactor
from repro.geometry import Pose
from repro.hw import AcceleratorConfig
from repro.sim import Simulator


def random_program(seed, n):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 0.1))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
        if rng.random() < 0.4:
            graph.add(GPSFactor(X(i + 1), rng.standard_normal(3),
                                Isotropic(3, 0.5)))
    return compile_graph(graph, values).program


def check_schedule(program, result, config):
    schedule = result.schedule
    deps = program.dependencies()
    instr_of = {i.uid: i for i in program.instructions}

    # (a) dependencies respected.
    for uid, preds in deps.items():
        start, _ = schedule[uid]
        for p in preds:
            _, p_finish = schedule[p]
            assert start >= p_finish - 1e-9, (
                f"#{uid} started at {start} before #{p} finished {p_finish}"
            )

    # (b)(c) unit occupancy within instance counts.
    events = {}
    for uid, (start, finish) in schedule.items():
        instr = instr_of[uid]
        if instr.op is Opcode.CONST:
            continue
        unit = instr.unit
        events.setdefault(unit, []).append((start, 1))
        events.setdefault(unit, []).append((finish, -1))
        assert finish > start, f"#{uid} has non-positive occupancy"
    for unit, unit_events in events.items():
        unit_events.sort(key=lambda e: (e[0], e[1]))
        live = 0
        for _, kind in unit_events:
            live += kind
            assert live <= config.unit_counts.get(unit, 0), (
                f"{unit} concurrency {live} exceeds configured instances"
            )


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 5000), n=st.integers(2, 6),
       policy=st.sampled_from(["ooo", "inorder", "sequential"]))
def test_schedule_is_physically_valid(seed, n, policy):
    program = random_program(seed, n)
    config = AcceleratorConfig()
    result = Simulator(config).run(program, policy, record_schedule=True)
    check_schedule(program, result, config)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 5000))
def test_multi_unit_concurrency_respected(seed):
    from repro.compiler.isa import UNIT_MATMUL, UNIT_QR

    program = random_program(seed, 5)
    config = AcceleratorConfig().with_extra_unit(UNIT_MATMUL)
    config = config.with_extra_unit(UNIT_QR)
    result = Simulator(config).run(program, "ooo", record_schedule=True)
    check_schedule(program, result, config)


def test_schedule_not_recorded_by_default():
    program = random_program(0, 3)
    result = Simulator().run(program, "ooo")
    assert result.schedule == {}


def test_sequential_schedule_never_overlaps():
    program = random_program(1, 4)
    result = Simulator().run(program, "sequential", record_schedule=True)
    instr_of = {i.uid: i for i in program.instructions}
    spans = sorted(
        (s, f) for uid, (s, f) in result.schedule.items()
        if instr_of[uid].op is not Opcode.CONST
    )
    for (s1, f1), (s2, f2) in zip(spans, spans[1:]):
        assert s2 >= f1 - 1e-9
