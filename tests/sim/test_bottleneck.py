"""Top-down cycle accounting and the what-if advisor.

Covers the `WaitTracker` bookkeeping semantics, the enforced
makespan identity on the application suite under every issue policy
(an acceptance criterion), the contention/roofline aggregates, the
debug invariant checker, and the advisor's predicted-vs-measured
contract (>= 5% measured reduction with the prediction within 25%,
the other acceptance criterion).
"""

import numpy as np
import pytest

from repro import obs
from repro.apps import all_applications
from repro.compiler import compile_graph
from repro.compiler.isa import Opcode, Program
from repro.errors import SimulationError
from repro.eval.experiments import ORIANNA_CONFIG
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.hw.accelerator import AcceleratorConfig, minimal_config
from repro.sim import POLICIES, Simulator
from repro.sim.bottleneck import (
    CAUSE_INORDER,
    CAUSE_SEQUENTIAL,
    CAUSE_WIDTH,
    DRAM_BANDWIDTH_WORDS_PER_CYCLE,
    WaitTracker,
    advise,
    enumerate_candidates,
    structural_cause,
)


def pose_chain(n=5, seed=0):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values)


@pytest.fixture(scope="module")
def chain_program():
    return pose_chain().program


@pytest.fixture(scope="module")
def app_programs():
    """One compiled steady-state frame per paper application."""
    return {app.name: app.compile_frame(seed=0)
            for app in all_applications()}


class TestWaitTracker:
    def test_zero_wait_records_no_segment(self):
        tracker = WaitTracker("ooo")
        tracker.mark_ready(0, 5.0, producer=None)
        tracker.close(0, 5.0)   # issues the instant it becomes ready
        assert 0 not in tracker.wait_causes

    def test_segments_carry_the_cause_seen_at_their_opening(self):
        tracker = WaitTracker("ooo")
        tracker.mark_ready(0, 0.0)
        tracker.close(0, 0.0)
        tracker.block(0, structural_cause("qr"))     # examined, deferred
        tracker.close(0, 4.0)                        # next round
        tracker.block(0, structural_cause("matmul"))
        tracker.close(0, 10.0)                       # issued here
        assert tracker.wait_causes[0] == {
            structural_cause("qr"): 4.0,
            structural_cause("matmul"): 6.0,
        }

    def test_unexamined_gap_falls_back_to_policy_default(self):
        for policy, default in (("ooo", CAUSE_WIDTH),
                                ("inorder", CAUSE_INORDER),
                                ("sequential", CAUSE_SEQUENTIAL)):
            tracker = WaitTracker(policy)
            tracker.mark_ready(3, 1.0)
            tracker.close(3, 7.0)   # never examined in between
            assert tracker.wait_causes[3] == {default: 6.0}

    def test_same_timestamp_reexamination_keeps_blocked_cause(self):
        # Two scheduling rounds can fire at the same timestamp (e.g.
        # zero-latency completions); the earlier round's cause must not
        # be consumed by the zero-length segment between them.
        tracker = WaitTracker("ooo")
        tracker.mark_ready(0, 0.0)
        tracker.close(0, 2.0)
        tracker.block(0, structural_cause("qr"))
        tracker.close(0, 2.0)   # same-timestamp round: no-op
        tracker.close(0, 6.0)
        assert tracker.wait_causes[0][structural_cause("qr")] == 4.0

    def test_depth_samples_record_transitions_only(self):
        tracker = WaitTracker("ooo")
        tracker.sample_depths(0.0, {"qr": 2})
        tracker.sample_depths(1.0, {"qr": 2})   # unchanged: no sample
        tracker.sample_depths(3.0, {"qr": 1})
        tracker.sample_depths(5.0, {})          # drained
        assert tracker.depth_samples["qr"] == [(0.0, 2), (3.0, 1),
                                               (5.0, 0)]


class TestIdentityOnApplications:
    """Acceptance: makespan == chain compute + attributed wait, for all
    four applications under all three issue policies."""

    @pytest.mark.parametrize("policy", POLICIES)
    def test_identity_holds_on_every_app(self, app_programs, policy):
        for name, program in app_programs.items():
            result = Simulator(ORIANNA_CONFIG).run(program, policy)
            acc = result.cycle_accounting
            assert acc is not None
            assert acc.identity_holds(), (
                f"{name}/{policy}: total {acc.total_cycles} != chain "
                f"compute {acc.chain_compute_cycles} + wait "
                f"{acc.chain_wait_cycles} (residue {acc.identity_error})"
            )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_wait_segments_tile_the_gap_exactly(self, app_programs,
                                                policy):
        program = app_programs["MobileRobot"]
        result = Simulator(ORIANNA_CONFIG).run(program, policy)
        for uid, info in \
                result.cycle_accounting.instruction_waits.items():
            tiled = sum(info["causes"].values())
            assert tiled == pytest.approx(info["wait"], abs=1e-2), (
                f"instruction #{uid} under {policy}"
            )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_identity_holds_under_finite_issue_width(self, chain_program,
                                                     policy):
        result = Simulator(issue_width=1).run(chain_program, policy)
        assert result.cycle_accounting.identity_holds()

    def test_debug_mode_enforces_the_identity(self, chain_program):
        with obs.enabled_scope(debug=True):
            Simulator().run(chain_program, "ooo")   # must not raise

    def test_checker_rejects_a_corrupted_accounting(self, chain_program):
        result = Simulator().run(chain_program, "ooo")
        result.cycle_accounting.identity_error = 7.0
        with pytest.raises(SimulationError, match="identity"):
            Simulator._check_accounting_invariants(result)

    def test_checker_rejects_untiled_waits(self, chain_program):
        result = Simulator().run(chain_program, "ooo")
        acc = result.cycle_accounting
        uid, info = next((u, i) for u, i in acc.instruction_waits.items()
                         if i["wait"] > 0)
        info["causes"] = {}
        with pytest.raises(SimulationError, match="tile"):
            Simulator._check_accounting_invariants(result)


class TestAccountingContents:
    def test_gated_by_names_the_last_arriving_producer(self,
                                                       chain_program):
        result = Simulator().run(chain_program, "ooo")
        deps = chain_program.dependencies()
        instrs = chain_program.instructions
        for uid, info in \
                result.cycle_accounting.instruction_waits.items():
            producer = info.get("gated_by")
            if producer is None:
                continue
            assert producer in deps[uid]
            assert instrs[producer].op is not Opcode.CONST

    def test_chain_steps_link_through_gated_by(self, chain_program):
        result = Simulator().run(chain_program, "ooo")
        chain = result.cycle_accounting.critical_chain
        assert chain
        for earlier, later in zip(chain, chain[1:]):
            assert later.gated_by == earlier.uid
        assert chain[0].gated_by is None

    def test_wait_by_cause_is_structural_under_unbounded_ooo(
            self, chain_program):
        # With an unbounded dispatch port the only reason a ready
        # instruction cannot issue is a saturated unit class.
        result = Simulator().run(chain_program, "ooo")
        causes = result.cycle_accounting.wait_by_cause
        assert causes
        assert all(c.startswith("structural.") for c in causes)

    def test_policy_causes_appear_in_order(self, chain_program):
        result = Simulator().run(chain_program, "sequential")
        assert CAUSE_SEQUENTIAL in result.cycle_accounting.wait_by_cause
        result = Simulator().run(chain_program, "inorder")
        assert CAUSE_INORDER in result.cycle_accounting.wait_by_cause

    def test_width_cause_appears_under_finite_width(self, chain_program):
        result = Simulator(issue_width=1).run(chain_program, "ooo")
        assert CAUSE_WIDTH in result.cycle_accounting.wait_by_cause

    def test_contention_mean_depth_is_time_weighted(self, chain_program):
        result = Simulator().run(chain_program, "ooo")
        for unit, cont in result.cycle_accounting.contention.items():
            assert 0 < cont.peak_depth
            assert 0.0 <= cont.mean_depth <= cont.peak_depth
            assert cont.saturated_cycles <= result.total_cycles + 1e-9

    def test_wait_by_stage_totals_match_wait_by_cause(self,
                                                      chain_program):
        acc = Simulator().run(chain_program, "ooo").cycle_accounting
        by_stage = sum(sum(row.values())
                       for row in acc.wait_by_stage.values())
        by_cause = sum(acc.wait_by_cause.values())
        assert by_stage == pytest.approx(by_cause)

    def test_roofline_counts_spill_round_trips_as_traffic(self):
        prog = Program("micro")
        a = prog.new_register("a", (64, 64))
        prog.emit(Opcode.CONST, [], [a])
        cur = a
        for _ in range(4):
            dst = prog.new_register("m", (64, 64))
            prog.emit(Opcode.MM, [cur, cur], [dst])
            cur = dst
        config = AcceleratorConfig().with_buffer_kib(1)
        result = Simulator(config).run(prog, "ooo")
        roof = result.cycle_accounting.roofline
        assert result.spilled_words > 0
        assert roof.traffic_words == 2 * result.spilled_words
        assert roof.memory_cycles == pytest.approx(
            roof.traffic_words / DRAM_BANDWIDTH_WORDS_PER_CYCLE)
        assert roof.bound == "compute"   # systolic MM dominates DRAM
        assert roof.busiest_unit == "matmul"

    def test_roofline_flips_to_memory_bound_on_heavy_spill(self):
        # _roofline classifies from busy cycles and spill traffic alone;
        # fabricate a result where reload traffic dwarfs compute.
        from repro.sim import EnergyBreakdown, SimulationResult
        from repro.sim.bottleneck import _roofline
        result = SimulationResult(
            policy="ooo", total_cycles=100, clock_mhz=167.0,
            energy=EnergyBreakdown(), instruction_count=1,
            issued_count=1, unit_busy_cycles={"vector": 40.0},
            unit_instance_counts={"vector": 1}, phase_work_cycles={},
            spilled_words=4096)
        roof = _roofline(result)
        assert roof.bound == "memory"
        assert roof.memory_cycles == pytest.approx(
            2 * 4096 / DRAM_BANDWIDTH_WORDS_PER_CYCLE)
        assert roof.busiest_unit == "vector"

    def test_to_dict_round_trips_and_caps_the_chain(self, chain_program):
        import json
        acc = Simulator().run(chain_program, "ooo").cycle_accounting
        exported = json.loads(json.dumps(acc.to_dict(chain_limit=2)))
        assert exported["total_cycles"] == acc.total_cycles
        assert len(exported["critical_chain"]) <= 2
        assert exported["chain_length"] == len(acc.critical_chain)


class TestEnumerateCandidates:
    ACCOUNTING = {
        "chain_wait_by_cause": {"structural.qr": 600.0, "width": 100.0,
                                "policy.inorder": 300.0},
        "chain_compute_cycles": 200.0,
    }

    def test_structural_candidate_scales_by_instance_count(self):
        cands = enumerate_candidates(self.ACCOUNTING, {"qr": 2},
                                     "inorder", 2, 1000)
        unit = next(c for c in cands if c.kind == "unit")
        assert unit.unit == "qr"
        # 600 chain cycles over 2 -> 3 instances: saves 600/3.
        assert unit.predicted_saved_cycles == pytest.approx(200.0)

    def test_policy_candidate_removes_policy_wait(self):
        cands = enumerate_candidates(self.ACCOUNTING, {"qr": 2},
                                     "inorder", None, 1000)
        pol = next(c for c in cands if c.kind == "policy")
        assert pol.new_policy == "ooo"
        assert pol.predicted_saved_cycles == pytest.approx(300.0)

    def test_no_policy_candidate_under_ooo(self):
        cands = enumerate_candidates(self.ACCOUNTING, {"qr": 2},
                                     "ooo", None, 1000)
        assert not any(c.kind == "policy" for c in cands)

    def test_width_candidate_only_with_finite_width(self):
        with_width = enumerate_candidates(self.ACCOUNTING, {}, "ooo",
                                          1, 1000)
        assert any(c.kind == "issue_width" for c in with_width)
        without = enumerate_candidates(self.ACCOUNTING, {}, "ooo",
                                       None, 1000)
        assert not any(c.kind == "issue_width" for c in without)

    def test_serialization_floor_clamps_the_prediction(self):
        # qr wait is huge, but matmul's serialized busy cycles bound
        # any achievable makespan: the prediction must not go below it.
        accounting = {
            "chain_wait_by_cause": {"structural.qr": 900.0},
            "chain_compute_cycles": 10.0,
        }
        cands = enumerate_candidates(
            accounting, {"qr": 1, "matmul": 1}, "ooo", None, 1000,
            unit_busy_cycles={"matmul": 800.0, "qr": 300.0})
        unit = next(c for c in cands if c.unit == "qr")
        assert unit.predicted_cycles == pytest.approx(800.0)

    def test_buffer_candidate_sized_to_stop_spilling(self):
        cands = enumerate_candidates(
            {"chain_wait_by_cause": {}, "chain_compute_cycles": 0.0},
            {}, "ooo", None, 1000, spilled_words=100,
            peak_live_words=3000)
        buf = next(c for c in cands if c.kind == "buffer")
        assert buf.new_buffer_kib == 12   # ceil(3000 * 4 / 1024)
        assert buf.predicted_saved_energy_mj > 0

    def test_candidates_sorted_by_predicted_saving(self):
        cands = enumerate_candidates(self.ACCOUNTING, {"qr": 2},
                                     "inorder", 2, 1000)
        savings = [c.predicted_saved_cycles for c in cands]
        assert savings == sorted(savings, reverse=True)


class TestAdvisor:
    @pytest.fixture(scope="class")
    def advice(self, app_programs):
        return advise(app_programs["MobileRobot"], minimal_config(),
                      "ooo", top_k=2, label="MobileRobot")

    def test_top_k_candidates_are_validated(self, advice):
        validated = [c for c in advice.candidates if c.validated]
        assert 1 <= len(validated) <= 2
        for cand in validated:
            assert cand.measured_cycles is not None
            assert cand.measured_speedup is not None
            assert cand.prediction_error is not None

    def test_acceptance_top_recommendation(self, advice):
        """Acceptance: >= 5% measured cycle reduction, with the
        predicted speedup within 25% of the resimulated value."""
        top = advice.top_validated()
        assert top is not None
        reduction = 1.0 - top.measured_cycles / advice.baseline_cycles
        assert reduction >= 0.05
        assert top.prediction_error <= 0.25

    def test_validation_measures_a_real_resimulation(self, advice,
                                                     app_programs):
        top = advice.top_validated()
        assert top.kind == "unit"
        measured = Simulator(
            minimal_config().with_extra_unit(top.unit)
        ).run(app_programs["MobileRobot"], "ooo")
        assert measured.total_cycles == top.measured_cycles

    def test_advice_to_dict_is_json_ready(self, advice):
        import json
        doc = json.loads(json.dumps(advice.to_dict()))
        assert doc["baseline_cycles"] == advice.baseline_cycles
        assert doc["candidates"]

    def test_reusing_a_baseline_skips_the_baseline_run(self,
                                                       app_programs):
        program = app_programs["Manipulator"]
        baseline = Simulator(minimal_config()).run(program, "ooo")
        adv = advise(program, minimal_config(), "ooo", top_k=0,
                     baseline=baseline, label="Manipulator")
        assert adv.baseline_cycles == baseline.total_cycles
        assert not any(c.validated for c in adv.candidates)


class TestBitIdentityWithObsDisabled:
    """The accounting layer observes; it must never steer."""

    def test_cycles_and_energy_unchanged_by_obs_state(self,
                                                      chain_program):
        plain = Simulator().run(chain_program, "ooo")
        with obs.enabled_scope(debug=True):
            observed = Simulator().run(chain_program, "ooo")
        assert plain.total_cycles == observed.total_cycles
        assert plain.energy_mj == observed.energy_mj
        assert plain.unit_busy_cycles == observed.unit_busy_cycles
