"""Tests for provenance attribution and critical-path analysis."""

import json

import numpy as np
import pytest

from repro.compiler import compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.sim import POLICIES, Simulator
from repro.sim.attribution import slack_bucket_labels


def pose_graph(n=6, seed=0):
    """A pose-graph chain: the canonical attribution workload."""
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values)


@pytest.fixture(scope="module")
def result():
    compiled = pose_graph()
    return Simulator().run(compiled.optimized().program, "ooo",
                           record_schedule=True)


class TestAttribution:
    def test_coverage_meets_the_bar(self, result):
        """Acceptance criterion: >= 95% of busy cycles attributed."""
        assert result.attribution is not None
        assert result.attribution.coverage() >= 0.95

    def test_attributed_cycles_bounded_by_busy_cycles(self, result):
        attr = result.attribution
        total_busy = sum(result.unit_busy_cycles.values())
        assert attr.total_busy_cycles == pytest.approx(total_busy)
        assert attr.attributed_cycles <= attr.total_busy_cycles + 1e-9

    def test_factor_split_sums_to_attributed_work(self, result):
        """Even splitting must conserve cycles across the factor table."""
        attr = result.attribution
        factor_cycles = sum(b.cycles for b in attr.by_factor.values())
        typed_cycles = sum(b.cycles
                           for b in attr.by_factor_type.values())
        assert factor_cycles == pytest.approx(typed_cycles)
        assert factor_cycles <= attr.attributed_cycles + 1e-6

    def test_stage_cycles_sum_to_attributed(self, result):
        attr = result.attribution
        stage_cycles = sum(b.cycles for b in attr.by_stage.values())
        assert stage_cycles == pytest.approx(attr.attributed_cycles)

    def test_elimination_dominates_pose_graph(self, result):
        """QR is the known hotspot; attribution must say so."""
        by_stage = result.attribution.by_stage
        assert by_stage["eliminate"].cycles == max(
            b.cycles for b in by_stage.values())

    def test_energy_conserved(self, result):
        attr = result.attribution
        assert attr.total_energy_nj * 1e-6 == pytest.approx(
            result.energy.dynamic_mj)

    def test_top_ranking(self, result):
        top = result.attribution.top("stage", 2)
        assert len(top) == 2
        assert top[0][1].cycles >= top[1][1].cycles


class TestCriticalPath:
    def test_length_bounds_the_makespan(self, result):
        cp = result.critical_path
        assert cp is not None
        assert 0 < cp.length_cycles <= result.total_cycles
        assert cp.makespan_cycles == pytest.approx(result.total_cycles)

    def test_path_cycles_sum_to_length(self, result):
        cp = result.critical_path
        assert sum(s.cycles for s in cp.path) == pytest.approx(
            cp.length_cycles)

    def test_path_steps_carry_provenance(self, result):
        cp = result.critical_path
        assert cp.path
        assert any(s.stage or s.factors or s.variable for s in cp.path)

    def test_slack_nonnegative_and_critical_set_nonempty(self, result):
        cp = result.critical_path
        assert cp.slack
        assert all(s >= 0.0 for s in cp.slack.values())
        assert cp.zero_slack_uids(), "some instruction must gate the end"

    def test_slack_histogram_counts_every_instruction(self, result):
        cp = result.critical_path
        hist = cp.slack_histogram()
        assert list(hist) == slack_bucket_labels()
        assert sum(hist.values()) == len(cp.slack)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_dependency_bound_holds_under_every_policy(self, policy):
        compiled = pose_graph(n=4, seed=1)
        res = Simulator().run(compiled.program, policy)
        assert res.critical_path.length_cycles <= res.total_cycles


class TestResultSerialization:
    def test_to_dict_is_json_serializable(self, result):
        payload = result.to_dict(include_schedule=True)
        text = json.dumps(payload)
        loaded = json.loads(text)
        assert loaded["attribution"]["coverage"] >= 0.95
        assert loaded["critical_path"]["length_cycles"] > 0
        assert loaded["schedule"]

    def test_schedule_omitted_by_default(self, result):
        assert "schedule" not in result.to_dict()

    def test_utilization_matches_accessor(self, result):
        payload = result.to_dict()
        for unit, value in payload["utilization"].items():
            assert value == pytest.approx(result.utilization(unit))
