"""Tests for the controller issue-width model and the disassembler."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.compiler import compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.sim import Simulator


def compiled(n=6, seed=0):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values)


class TestIssueWidth:
    def test_invalid_width_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(issue_width=0)

    def test_narrow_issue_never_faster(self):
        program = compiled().program
        wide = Simulator().run(program, "ooo").total_cycles
        narrow = Simulator(issue_width=1).run(program, "ooo").total_cycles
        assert narrow >= wide

    def test_width_monotone(self):
        program = compiled().program
        cycles = [Simulator(issue_width=w).run(program, "ooo").total_cycles
                  for w in (1, 2, 8)]
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_all_instructions_still_complete(self):
        c = compiled()
        result = Simulator(issue_width=1).run(c.program, "ooo")
        nontrivial = sum(1 for i in c.program if i.unit != "none")
        assert result.issued_count == nontrivial

    def test_sequential_unaffected_by_width(self):
        program = compiled().program
        a = Simulator(issue_width=1).run(program, "sequential").total_cycles
        b = Simulator().run(program, "sequential").total_cycles
        assert a == b


class TestDisassembler:
    def test_lists_instructions_with_levels(self):
        program = compiled(3).program
        text = program.disassemble()
        assert "L0:" in text or "L1:" in text
        assert "qr" in text
        assert "construct" in text and "decompose" in text

    def test_limit_truncates(self):
        program = compiled().program
        text = program.disassemble(limit=5)
        assert "more)" in text
        assert text.count("#") == 5

    def test_no_levels_mode(self):
        program = compiled(3).program
        text = program.disassemble(limit=10, show_levels=False)
        assert "L1:" not in text
