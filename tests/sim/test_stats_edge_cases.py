"""Edge cases for SimulationResult accessors and utilization bounds."""

import numpy as np
import pytest

from repro.compiler import compile_application, compile_graph
from repro.compiler.isa import Opcode, Program
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor, SmoothnessFactor
from repro.geometry import Pose
from repro.hw import AcceleratorConfig
from repro.sim import POLICIES, EnergyBreakdown, SimulationResult, Simulator
from repro.sim.bottleneck import BYTES_PER_WORD, DRAM_ENERGY_PER_WORD_NJ


def make_result(**overrides):
    base = dict(
        policy="ooo",
        total_cycles=100,
        clock_mhz=200.0,
        energy=EnergyBreakdown(dynamic_mj=1.0, static_mj=0.5,
                               memory_mj=0.25),
        instruction_count=10,
        issued_count=8,
        unit_busy_cycles={"qr": 60, "matmul": 40},
        unit_instance_counts={"qr": 2, "matmul": 1},
        phase_work_cycles={"construct": 30, "decompose": 70},
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestUtilization:
    def test_zero_cycles_is_zero_not_nan(self):
        result = make_result(total_cycles=0)
        assert result.utilization("qr") == 0.0

    def test_unknown_unit_class_is_zero(self):
        result = make_result()
        assert result.utilization("nonexistent") == 0.0

    def test_unit_without_instance_count_is_zero(self):
        # A class absent from unit_instance_counts has no configured
        # hardware; utilization must be 0.0, not a silent count=1 guess.
        result = make_result(unit_busy_cycles={"qr": 50},
                             unit_instance_counts={})
        assert result.utilization("qr") == 0.0

    def test_multi_instance_normalization(self):
        result = make_result()
        assert result.utilization("qr") == pytest.approx(60 / (100 * 2))


class TestPhaseShare:
    def test_empty_phase_table_is_zero(self):
        result = make_result(phase_work_cycles={})
        assert result.phase_share("construct") == 0.0

    def test_unknown_phase_is_zero(self):
        result = make_result()
        assert result.phase_share("warp-drive") == 0.0

    def test_shares_sum_to_one(self):
        result = make_result()
        total = sum(result.phase_share(p)
                    for p in result.phase_work_cycles)
        assert total == pytest.approx(1.0)


class TestSummary:
    def test_summary_with_zero_cycles(self):
        result = make_result(total_cycles=0)
        text = result.summary()
        assert "cycles=0" in text
        assert "0.0%" in text  # utilization renders, no division error

    def test_summary_without_units(self):
        result = make_result(unit_busy_cycles={},
                             unit_instance_counts={})
        text = result.summary()
        assert "policy=ooo" in text

    def test_summary_includes_stalls_when_present(self):
        result = make_result(stall_counts={"raw": 5, "structural": 2})
        assert "stalls: raw=5, structural=2" in result.summary()
        without = make_result()
        assert "stalls" not in without.summary()

    def test_summary_includes_fault_counts_when_present(self):
        result = make_result(fault_counts={"injected": 3.0,
                                           "stall_cycles": 12.0})
        text = result.summary()
        assert "faults: injected=3, stall_cycles=12" in text
        without = make_result()
        assert "faults" not in without.summary()


# ----------------------------------------------------------------------
# Regression (observability satellite): the unit_free heap bookkeeping
# must never account more busy cycles than instances * makespan.
# ----------------------------------------------------------------------

def pose_chain_compiled(n=6, seed=0):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values)


def two_stream_program():
    rng = np.random.default_rng(7)
    loc_graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                         Isotropic(6, 1e-2))])
    loc_values = Values({X(0): Pose.identity(3)})
    for i in range(3):
        loc_graph.add(BetweenFactor(X(i + 1), X(i),
                                    Pose.random(3, rng, scale=0.3)))
        loc_values.insert(X(i + 1), Pose.random(3, rng))
    plan_graph = FactorGraph()
    plan_values = Values()
    for i in range(4):
        plan_values.insert(X(i), np.array([float(i), 0.0, 1.0, 0.0]))
    for i in range(3):
        plan_graph.add(SmoothnessFactor(X(i), X(i + 1), dof=2, dt=1.0))
    plan_graph.add(PriorFactor(X(0), np.zeros(4), Isotropic(4, 1e-2)))
    return compile_application({
        "localization": (loc_graph, loc_values),
        "planning": (plan_graph, plan_values),
    })


def chained_matmul_program(n=16, chain=3):
    """A chain of n x n matmuls: each link's output feeds the next.

    Every computed register is n*n words; consecutive links' outputs
    are simultaneously live (the producer's result lives until its
    consumer finishes), so the peak live set is a small, predictable
    multiple of n*n.
    """
    prog = Program("micro")
    a = prog.new_register("a", (n, n))
    prog.emit(Opcode.CONST, [], [a])
    b = prog.new_register("b", (n, n))
    prog.emit(Opcode.CONST, [], [b])
    cur = a
    for _ in range(chain):
        dst = prog.new_register("m", (n, n))
        prog.emit(Opcode.MM, [cur, b], [dst])
        cur = dst
    return prog


class TestLiveSetSpillAccounting:
    """Simulator._live_set: peak-live words vs buffer capacity."""

    def test_no_spill_with_default_buffer(self):
        prog = chained_matmul_program()
        result = Simulator().run(prog, "ooo")
        assert result.peak_live_words > 0
        assert result.spilled_words == 0
        assert result.energy.memory_mj == 0.0

    def test_exactly_at_capacity_does_not_spill(self):
        # Each 16x16 register is 256 words = 1 KiB, so the peak is an
        # exact number of KiB and the buffer can match it to the word.
        prog = chained_matmul_program(n=16)
        peak = Simulator().run(prog, "ooo").peak_live_words
        assert peak * BYTES_PER_WORD % 1024 == 0
        exact_kib = peak * BYTES_PER_WORD // 1024
        config = AcceleratorConfig().with_buffer_kib(exact_kib)
        result = Simulator(config).run(prog, "ooo")
        assert result.peak_live_words == peak
        assert result.spilled_words == 0

    def test_one_word_short_spills_the_difference(self):
        prog = chained_matmul_program(n=16)
        peak = Simulator().run(prog, "ooo").peak_live_words
        short_kib = peak * BYTES_PER_WORD // 1024 - 1
        config = AcceleratorConfig().with_buffer_kib(short_kib)
        result = Simulator(config).run(prog, "ooo")
        capacity_words = short_kib * 1024 // BYTES_PER_WORD
        assert result.spilled_words == peak - capacity_words
        assert result.spilled_words == 1024 // BYTES_PER_WORD

    def test_spill_charges_memory_energy_per_word_round_trip(self):
        prog = chained_matmul_program(n=16)
        peak = Simulator().run(prog, "ooo").peak_live_words
        config = AcceleratorConfig().with_buffer_kib(
            peak * BYTES_PER_WORD // 1024 - 1)
        result = Simulator(config).run(prog, "ooo")
        expected = (result.spilled_words * DRAM_ENERGY_PER_WORD_NJ
                    * 2 * 1e-6)
        assert result.energy.memory_mj == pytest.approx(expected)

    def test_peak_live_independent_of_buffer_size(self):
        prog = chained_matmul_program(n=16)
        big = Simulator().run(prog, "ooo")
        small = Simulator(
            AcceleratorConfig().with_buffer_kib(1)).run(prog, "ooo")
        assert big.peak_live_words == small.peak_live_words
        assert small.spilled_words > big.spilled_words


class TestUtilizationBoundRegression:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_utilization_at_most_one_single_stream(self, policy):
        compiled = pose_chain_compiled()
        result = Simulator().run(compiled.program, policy)
        for unit in result.unit_busy_cycles:
            assert result.utilization(unit) <= 1.0 + 1e-9, (
                f"unit {unit} over-subscribed under {policy}"
            )

    @pytest.mark.parametrize("policy", POLICIES)
    def test_utilization_at_most_one_multi_stream_multi_instance(
            self, policy):
        program = two_stream_program()
        config = AcceleratorConfig(unit_counts={
            "matmul": 2, "vector": 2, "special": 1, "qr": 3, "bsub": 2,
        })
        result = Simulator(config).run(program, policy)
        for unit in result.unit_busy_cycles:
            assert result.utilization(unit) <= 1.0 + 1e-9, (
                f"unit {unit} over-subscribed under {policy}"
            )
