"""Tests for the schedule timeline renderer."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.compiler import compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.sim import Simulator, busy_summary, render_timeline


@pytest.fixture(scope="module")
def compiled():
    rng = np.random.default_rng(0)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(4):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values)


class TestRenderTimeline:
    def test_contains_all_unit_strips(self, compiled):
        result = Simulator().run(compiled.program, "ooo",
                                 record_schedule=True)
        text = render_timeline(compiled.program, result)
        for unit in ("matmul", "qr", "vector", "special", "bsub"):
            assert unit in text

    def test_phases_marked(self, compiled):
        result = Simulator().run(compiled.program, "ooo",
                                 record_schedule=True)
        text = render_timeline(compiled.program, result)
        assert "c" in text and "Q" in text and "b" in text

    def test_requires_recorded_schedule(self, compiled):
        result = Simulator().run(compiled.program, "ooo")
        with pytest.raises(SimulationError):
            render_timeline(compiled.program, result)

    def test_width_validated(self, compiled):
        result = Simulator().run(compiled.program, "ooo",
                                 record_schedule=True)
        with pytest.raises(SimulationError):
            render_timeline(compiled.program, result, width=2)

    def test_sequential_shows_less_overlap(self, compiled):
        """Under OoO, matmul and QR strips are busy simultaneously."""
        sim = Simulator()

        def overlap(policy):
            result = sim.run(compiled.program, policy, record_schedule=True)
            lines = render_timeline(compiled.program, result).splitlines()
            strips = {}
            for line in lines[1:]:
                unit = line.split("|")[0].strip()
                strips[unit] = line.split("|")[1]
            both = sum(1 for a, b in zip(strips["matmul"], strips["qr"])
                       if a != "." and b != ".")
            return both

        assert overlap("ooo") > overlap("sequential")


class TestBusySummary:
    def test_summary_lines(self, compiled):
        result = Simulator().run(compiled.program, "ooo")
        text = busy_summary(result)
        assert "utilization" in text
        assert text.count("\n") + 1 == len(result.unit_busy_cycles)
