"""Fault-plan timing effects and simulator error paths."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.compiler import compile_graph
from repro.compiler.isa import UNIT_QR
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.hw import AcceleratorConfig
from repro.resilience import CampaignSpec, FaultPlan, plan_faults
from repro.sim import Simulator


@pytest.fixture(scope="module")
def program():
    rng = np.random.default_rng(0)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(3):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values).program


def result_fields(result):
    return (result.total_cycles, result.energy.total_mj,
            result.issued_count)


class TestFaultPlanTiming:
    def test_none_and_empty_plan_are_bit_identical(self, program):
        clean = Simulator().run(program, "ooo")
        empty = Simulator().run(program, "ooo",
                                fault_plan=FaultPlan({}))
        assert result_fields(clean) == result_fields(empty)
        assert empty.fault_counts == {}

    def test_stall_faults_add_cycles_not_energy(self, program):
        clean = Simulator().run(program, "ooo")
        spec = CampaignSpec(fault_model="stall", rate=0.2, seed=7,
                            stall_cycles=40)
        plan = plan_faults(program, spec)
        assert len(plan) > 0
        faulty = Simulator().run(program, "ooo", fault_plan=plan)
        assert faulty.total_cycles > clean.total_cycles
        assert faulty.energy.dynamic_mj == clean.energy.dynamic_mj
        assert faulty.fault_counts["stall_cycles"] == \
            40.0 * len(plan.timing_events())

    def test_drop_faults_add_cycles_and_energy(self, program):
        clean = Simulator().run(program, "ooo")
        spec = CampaignSpec(fault_model="drop", rate=0.2, seed=7)
        plan = plan_faults(program, spec)
        assert len(plan) > 0
        faulty = Simulator().run(program, "ooo", fault_plan=plan)
        assert faulty.total_cycles > clean.total_cycles
        assert faulty.energy.dynamic_mj > clean.energy.dynamic_mj
        assert faulty.fault_counts["drop_cycles"] > 0

    def test_recorded_retries_charge_cycles_and_energy(self, program):
        clean = Simulator().run(program, "ooo")
        spec = CampaignSpec(fault_model="value", rate=0.1, seed=3)
        plan = plan_faults(program, spec)
        assert len(plan) > 0
        for uid in plan.events:
            plan.attempts[uid] = 2  # as the value domain would record
        faulty = Simulator().run(program, "ooo", fault_plan=plan)
        assert faulty.total_cycles > clean.total_cycles
        assert faulty.energy.dynamic_mj > clean.energy.dynamic_mj
        assert faulty.fault_counts["retry_cycles"] > 0

    def test_plan_is_deterministic_across_runs(self, program):
        spec = CampaignSpec(fault_model="mixed", rate=0.1, seed=11)
        plan = plan_faults(program, spec)
        a = Simulator().run(program, "ooo", fault_plan=plan)
        b = Simulator().run(program, "ooo",
                            fault_plan=plan_faults(program, spec))
        assert result_fields(a) == result_fields(b)
        assert a.fault_counts == b.fault_counts


class TestErrorPaths:
    def test_missing_unit_instances_names_instruction(self, program):
        config = AcceleratorConfig()
        counts = {u: c for u, c in config.unit_counts.items()
                  if u != UNIT_QR}
        starved = AcceleratorConfig(unit_counts=counts,
                                    templates=config.templates)
        with pytest.raises(SimulationError,
                           match=r"no unit instances of class 'qr'"):
            Simulator(starved).run(program, "ooo")
        with pytest.raises(SimulationError, match=r"instruction #\d+"):
            Simulator(starved).run(program, "ooo")

    def test_missing_latency_template_names_instruction(self, program):
        config = AcceleratorConfig()
        counts = {u: c for u, c in config.unit_counts.items()
                  if u != UNIT_QR}
        templates = {u: t for u, t in config.templates.items()
                     if u != UNIT_QR}
        bare = AcceleratorConfig(unit_counts=counts, templates=templates)
        with pytest.raises(
                SimulationError,
                match=r"no latency template for unit class 'qr'.*"
                      r"instruction #\d+"):
            Simulator(bare).run(program, "ooo")

    def test_missing_energy_template_names_instruction(self, program):
        config = AcceleratorConfig()
        counts = {u: c for u, c in config.unit_counts.items()
                  if u != UNIT_QR}
        templates = {u: t for u, t in config.templates.items()
                     if u != UNIT_QR}
        bare = AcceleratorConfig(unit_counts=counts, templates=templates)
        with pytest.raises(
                SimulationError,
                match=r"no energy template for unit class 'qr'.*"
                      r"instruction #\d+"):
            Simulator(bare)._energies(program)
