"""Tests for the cycle-level simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.compiler import compile_application, compile_graph
from repro.compiler.isa import UNIT_MATMUL, UNIT_QR
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor, SmoothnessFactor
from repro.geometry import Pose
from repro.hw import AcceleratorConfig, minimal_config
from repro.sim import Simulator


def pose_chain(n=5, seed=0):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i), Pose.random(3, rng,
                                                            scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values)


def two_algorithm_program():
    loc = pose_chain(4, seed=1)
    plan_graph = FactorGraph()
    plan_values = Values()
    for i in range(4):
        plan_values.insert(X(i), np.array([float(i), 0.0, 1.0, 0.0]))
    for i in range(3):
        plan_graph.add(SmoothnessFactor(X(i), X(i + 1), dof=2, dt=1.0))
    plan_graph.add(PriorFactor(X(0), np.zeros(4), Isotropic(4, 1e-2)))
    del loc
    # Rebuild via compile_application for proper namespacing.
    loc_graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                         Isotropic(6, 1e-2))])
    loc_values = Values({X(0): Pose.identity(3)})
    rng = np.random.default_rng(2)
    for i in range(3):
        loc_graph.add(BetweenFactor(X(i + 1), X(i),
                                    Pose.random(3, rng, scale=0.3)))
        loc_values.insert(X(i + 1), Pose.random(3, rng))
    return compile_application({
        "localization": (loc_graph, loc_values),
        "planning": (plan_graph, plan_values),
    })


class TestBasicExecution:
    def test_all_instructions_complete(self):
        compiled = pose_chain()
        result = Simulator().run(compiled.program, "ooo")
        assert result.total_cycles > 0
        nontrivial = sum(1 for i in compiled.program
                         if i.unit != "none")
        assert result.issued_count == nontrivial

    def test_unknown_policy_rejected(self):
        compiled = pose_chain()
        with pytest.raises(SimulationError):
            Simulator().run(compiled.program, "speculative")

    def test_deterministic(self):
        compiled = pose_chain()
        sim = Simulator()
        a = sim.run(compiled.program, "ooo")
        b = sim.run(compiled.program, "ooo")
        assert a.total_cycles == b.total_cycles
        assert a.energy_mj == pytest.approx(b.energy_mj)


class TestPolicyOrdering:
    """OoO <= in-order <= sequential, and the gaps are real."""

    def test_ooo_beats_inorder(self):
        compiled = pose_chain(8)
        sim = Simulator()
        ooo = sim.run(compiled.program, "ooo")
        inorder = sim.run(compiled.program, "inorder")
        assert ooo.total_cycles < inorder.total_cycles

    def test_inorder_beats_sequential(self):
        compiled = pose_chain(8)
        sim = Simulator()
        inorder = sim.run(compiled.program, "inorder")
        seq = sim.run(compiled.program, "sequential")
        assert inorder.total_cycles <= seq.total_cycles

    def test_ooo_energy_advantage(self):
        # Static energy scales with runtime, so OoO must use less energy.
        compiled = pose_chain(8)
        sim = Simulator()
        ooo = sim.run(compiled.program, "ooo")
        seq = sim.run(compiled.program, "sequential")
        assert ooo.energy_mj < seq.energy_mj

    def test_more_units_help_ooo(self):
        compiled = pose_chain(8)
        small = Simulator(minimal_config())
        big_config = minimal_config().with_extra_unit(UNIT_QR)
        big_config = big_config.with_extra_unit(UNIT_MATMUL)
        big = Simulator(big_config)
        assert big.run(compiled.program, "ooo").total_cycles <= (
            small.run(compiled.program, "ooo").total_cycles
        )

    def test_extra_units_never_help_sequential(self):
        # A controller that never overlaps cannot exploit extra units.
        compiled = pose_chain(6)
        small = Simulator(minimal_config())
        big = Simulator(minimal_config().with_extra_unit(UNIT_QR))
        assert big.run(compiled.program, "sequential").total_cycles == (
            small.run(compiled.program, "sequential").total_cycles
        )


class TestCoarseGrainedOoO:
    def test_algorithms_overlap_under_ooo(self):
        """Merged two-algorithm programs overlap in time under OoO."""
        program = two_algorithm_program()
        sim = Simulator()
        merged = sim.run(program, "ooo").total_cycles
        spans = sim.run(program, "ooo").algorithm_span_cycles
        assert set(spans) == {"localization", "planning"}
        # Overlap: the merged makespan is less than the sum of spans.
        assert merged < spans["localization"] + spans["planning"]

    def test_inorder_serializes_algorithms(self):
        program = two_algorithm_program()
        sim = Simulator()
        ooo = sim.run(program, "ooo").total_cycles
        inorder = sim.run(program, "inorder").total_cycles
        assert ooo < inorder


class TestStats:
    def test_utilization_bounded(self):
        compiled = pose_chain()
        result = Simulator().run(compiled.program, "ooo")
        for unit in result.unit_busy_cycles:
            assert 0.0 <= result.utilization(unit) <= 1.0

    def test_phase_shares_sum_to_one(self):
        compiled = pose_chain()
        result = Simulator().run(compiled.program, "ooo")
        total = sum(result.phase_share(p)
                    for p in ("construct", "decompose", "backsub"))
        assert total == pytest.approx(1.0)

    def test_decompose_dominates_work(self):
        # Sec. 7.3: matrix decomposition is the most expensive phase.
        compiled = pose_chain(8)
        result = Simulator().run(compiled.program, "ooo")
        assert result.phase_share("decompose") > result.phase_share("backsub")

    def test_time_units(self):
        compiled = pose_chain()
        result = Simulator().run(compiled.program, "ooo")
        assert result.time_ms == pytest.approx(result.time_us / 1000.0)

    def test_energy_components_nonnegative(self):
        compiled = pose_chain()
        e = Simulator().run(compiled.program, "ooo").energy
        assert e.dynamic_mj > 0
        assert e.static_mj > 0
        assert e.memory_mj >= 0

    def test_summary_renders(self):
        compiled = pose_chain()
        text = Simulator().run(compiled.program, "ooo").summary()
        assert "policy=ooo" in text


class TestBufferModel:
    def test_tiny_buffer_spills(self):
        compiled = pose_chain(8)
        tiny = Simulator(AcceleratorConfig(buffer_kib=4))
        roomy = Simulator(AcceleratorConfig(buffer_kib=4096))
        spill_tiny = tiny.run(compiled.program, "ooo").spilled_words
        spill_roomy = roomy.run(compiled.program, "ooo").spilled_words
        assert spill_roomy == 0
        assert spill_tiny >= spill_roomy

    def test_spill_costs_energy(self):
        compiled = pose_chain(8)
        tiny = Simulator(AcceleratorConfig(buffer_kib=1)).run(
            compiled.program, "ooo")
        if tiny.spilled_words > 0:
            assert tiny.energy.memory_mj > 0
