"""Tests for cross-frame pipelining."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.compiler import Executor, Opcode, compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.sim import Simulator
from repro.sim.pipeline import replicate_frames, steady_state_throughput


@pytest.fixture(scope="module")
def frame():
    rng = np.random.default_rng(0)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(4):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values)


class TestReplicateFrames:
    def test_instruction_count_scales(self, frame):
        doubled = replicate_frames(frame.program, 2)
        assert len(doubled) == 2 * len(frame.program)

    def test_register_namespaces_disjoint(self, frame):
        doubled = replicate_frames(frame.program, 2)
        deps = doubled.dependencies()
        frame_of = {i.uid: i.algorithm.rsplit("@", 1)[-1]
                    for i in doubled.instructions}
        for uid, preds in deps.items():
            for p in preds:
                assert frame_of[p] == frame_of[uid]

    def test_replicated_program_executes_correctly(self, frame):
        doubled = replicate_frames(frame.program, 2)
        registers = Executor().run(doubled)
        base = Executor().run(frame.program)
        for key, reg in frame.solution_registers.items():
            del key
            for prefix in ("f0:", "f1:"):
                assert np.allclose(registers[prefix + reg], base[reg])

    def test_invalid_frame_count(self, frame):
        with pytest.raises(SimulationError):
            replicate_frames(frame.program, 0)


class TestThroughput:
    def test_pipelining_improves_throughput(self, frame):
        result = steady_state_throughput(frame.program, frames=4)
        # Overlapped frames finish faster per frame than isolated ones.
        assert result.cycles_per_frame < result.single_frame_cycles
        assert result.pipelining_gain > 1.0

    def test_sequential_controller_cannot_pipeline(self, frame):
        result = steady_state_throughput(frame.program,
                                         policy="sequential", frames=3)
        assert result.pipelining_gain == pytest.approx(1.0, rel=0.01)

    def test_gain_bounded_by_unit_counts(self, frame):
        # With one unit per class, throughput cannot exceed the busiest
        # unit's occupancy bound: gain stays modest and finite.
        result = steady_state_throughput(frame.program, frames=4)
        assert result.pipelining_gain < 8.0
