"""Tests for the shared operation cost accounting."""

import numpy as np
import pytest

from repro.compiler import Opcode, compile_graph
from repro.baselines import (
    dense_backsub_cycles,
    dense_backsub_flops,
    dense_qr_cycles,
    dense_qr_flops,
    instruction_flops,
    phase_flops,
    program_flops,
    program_op_count,
)
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose


def compiled(n=4, seed=0):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values)


class TestInstructionFlops:
    def test_consts_are_free(self):
        c = compiled()
        shapes = c.program.register_shapes
        for instr in c.program:
            if instr.op is Opcode.CONST:
                assert instruction_flops(instr, shapes) == 0

    def test_matmul_flops(self):
        c = compiled()
        shapes = c.program.register_shapes
        for instr in c.program:
            if instr.op is Opcode.RR:
                a = shapes[instr.srcs[0]]
                assert instruction_flops(instr, shapes) == 2 * a[0] ** 3

    def test_every_instruction_has_a_model(self):
        c = compiled()
        shapes = c.program.register_shapes
        for instr in c.program:
            assert instruction_flops(instr, shapes) >= 0

    def test_program_flops_positive_and_additive(self):
        c = compiled()
        total = program_flops(c.program)
        per_phase = phase_flops(c.program)
        assert total > 0
        assert sum(per_phase.values()) == total

    def test_op_count_excludes_consts(self):
        c = compiled()
        ops = program_op_count(c.program)
        consts = sum(1 for i in c.program if i.op is Opcode.CONST)
        assert ops + consts == len(c.program)


class TestDenseCosts:
    def test_qr_flops_grow_with_size(self):
        assert dense_qr_flops(100, 60) > dense_qr_flops(50, 30)

    def test_qr_cycles_grow_with_size(self):
        assert dense_qr_cycles(100, 60) > dense_qr_cycles(50, 30)

    def test_backsub_quadratic(self):
        assert dense_backsub_flops(10) == 100
        assert dense_backsub_cycles(20) > dense_backsub_cycles(10)

    def test_known_dense_qr_magnitude(self):
        # The paper's 147x90 localization matrix: flops ~ 2*90^2*(147-30).
        flops = dense_qr_flops(147, 90)
        assert 1_500_000 < flops < 2_500_000
