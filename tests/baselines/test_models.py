"""Tests for the CPU/GPU/VANILLA-HLS/STACK baseline models."""

import numpy as np
import pytest

from repro.apps import mobile_robot
from repro.baselines import (
    ARM,
    GtsamLikeSolver,
    INTEL,
    ORIANNA_SW,
    STACK_CONFIGS,
    StackAccelerators,
    TX1_GPU,
    VanillaHls,
    se3_construct_inflation,
)
from repro.compiler import compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.hw import AcceleratorConfig
from repro.sim import Simulator


@pytest.fixture(scope="module")
def frame():
    app = mobile_robot()
    return app.compile_frame(seed=0)


@pytest.fixture(scope="module")
def orianna_result(frame):
    from repro.compiler.isa import (
        UNIT_BSUB, UNIT_MATMUL, UNIT_QR, UNIT_SPECIAL, UNIT_VECTOR,
    )

    config = AcceleratorConfig(unit_counts={
        UNIT_MATMUL: 2, UNIT_VECTOR: 2, UNIT_SPECIAL: 1,
        UNIT_QR: 3, UNIT_BSUB: 2,
    })
    return Simulator(config).run(frame, "ooo")


class TestCpuModels:
    def test_intel_faster_than_arm(self, frame):
        assert INTEL.estimate(frame).time_s < ARM.estimate(frame).time_s

    def test_orianna_accelerator_beats_both(self, frame, orianna_result):
        t_acc = orianna_result.time_ms
        assert INTEL.estimate(frame).time_ms > t_acc
        assert ARM.estimate(frame).time_ms > 10 * t_acc

    def test_intel_arm_gap_in_paper_range(self, frame):
        ratio = ARM.estimate(frame).time_s / INTEL.estimate(frame).time_s
        # The paper's numbers imply Intel ~8.2x faster than the A57.
        assert 5.0 < ratio < 12.0

    def test_orianna_sw_gains_under_ten_percent(self, frame):
        # Unified pose in software alone: < 10% end-to-end (Sec. 7.3).
        gain = INTEL.estimate(frame).time_s / ORIANNA_SW.estimate(frame).time_s
        assert 1.0 < gain < 1.15

    def test_se3_inflation_matches_mac_model(self):
        inflation = se3_construct_inflation()
        assert inflation > 1.5  # 52.7% savings -> ~2.1x inflation

    def test_energy_positive(self, frame):
        r = INTEL.estimate(frame)
        assert r.energy_j == pytest.approx(r.time_s * INTEL.power_w)


class TestGpuModel:
    def test_between_arm_and_orianna(self, frame, orianna_result):
        tg = TX1_GPU.estimate(frame).time_ms
        assert orianna_result.time_ms < tg < ARM.estimate(frame).time_ms

    def test_construct_phase_speedup_over_arm(self, frame):
        """The paper: construction itself speeds up (up to 4.8x) on GPU."""
        from repro.baselines.cpu import CpuModel
        from repro.compiler.isa import PHASE_CONSTRUCT
        from repro.baselines.cost import instruction_flops

        shapes = frame.register_shapes
        construct_flops = sum(
            instruction_flops(i, shapes) for i in frame.instructions
            if i.phase == PHASE_CONSTRUCT
        )
        construct_ops = sum(
            1 for i in frame.instructions if i.phase == PHASE_CONSTRUCT
        )
        arm_construct = (construct_ops * ARM.op_overhead_ns * 1e-9
                         + construct_flops / (ARM.effective_gflops * 1e9))
        gpu_construct = TX1_GPU.construct_time_s(frame)
        assert arm_construct / gpu_construct > 2.0

    def test_solver_is_launch_bound(self, frame):
        construct = TX1_GPU.construct_time_s(frame)
        total = TX1_GPU.estimate(frame).time_s
        assert total - construct > construct  # solve dominates


class TestVanillaHls:
    def test_slower_than_orianna(self, frame, orianna_result):
        app = mobile_robot()
        shapes = [g.linearize(v).shape()
                  for g, v in app.build_graphs(seed=0).values()]
        result = VanillaHls().estimate(frame, shapes)
        assert result.time_ms > 5 * orianna_result.time_ms
        assert result.energy_mj > 5 * orianna_result.energy_mj

    def test_bigger_matrices_cost_more(self, frame):
        small = VanillaHls().estimate(frame, [(50, 30)])
        large = VanillaHls().estimate(frame, [(150, 90)])
        assert large.cycles > small.cycles

    def test_resources_exceed_orianna_minimal(self):
        from repro.hw import minimal_config

        assert VanillaHls().config.resources().dsp > (
            minimal_config().resources().dsp
        )


class TestStack:
    def build_per_algorithm(self):
        app = mobile_robot()
        out = {}
        for name, (g, v) in app.build_graphs(seed=0).items():
            out[name] = compile_graph(g, v, algorithm=name,
                                      register_prefix=name).program
        return out

    def test_latency_is_max_energy_is_sum(self):
        stack = StackAccelerators()
        result = stack.estimate(self.build_per_algorithm())
        assert result.time_s > 0
        assert set(result.per_algorithm_ms) == {"localization", "planning",
                                                "control"}
        assert result.time_s * 1e3 == pytest.approx(
            max(result.per_algorithm_ms.values())
        )

    def test_resources_sum_three_designs(self):
        stack = StackAccelerators()
        result = stack.estimate(self.build_per_algorithm())
        single = STACK_CONFIGS["localization"].resources()
        assert result.resources.dsp > 2 * single.dsp

    def test_repeats_serialize_on_dedicated_unit(self):
        per_alg = self.build_per_algorithm()
        doubled = dict(per_alg)
        doubled["control#1"] = per_alg["control"]
        stack = StackAccelerators()
        base = stack.estimate(per_alg)
        more = stack.estimate(doubled)
        assert more.per_algorithm_ms["control"] > (
            base.per_algorithm_ms["control"]
        )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(KeyError):
            StackAccelerators().config_for("perception")


class TestGtsamLike:
    def test_reference_solver_converges(self):
        rng = np.random.default_rng(0)
        truth = Pose.random(3, rng)
        graph = FactorGraph([PriorFactor(X(0), truth, Isotropic(6, 0.01))])
        initial = Values({X(0): truth.retract(0.3 * rng.standard_normal(6))})
        result = GtsamLikeSolver().optimize(graph, initial)
        assert result.converged
        assert result.values.pose(X(0)).almost_equal(truth, tol=1e-4)
