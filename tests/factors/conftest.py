"""Shared helpers for factor tests."""

import numpy as np

from repro.factorgraph import numerical_jacobian


def assert_jacobians_match(factor, values, atol=1e-5, step=1e-6):
    """Every analytic Jacobian block must match central finite differences.

    ``step`` trades truncation error (~step^2) against roundoff
    amplification (~eps_f / step): error evaluations that pass through
    the SO(3) log near large angles carry ~1e-10 noise, so tests that
    sample such configurations should use a larger step.
    """
    analytic = factor.jacobians(values)
    assert analytic is not None, "factor has no analytic jacobians"
    for key, block in zip(factor.keys, analytic):
        numeric = numerical_jacobian(factor, values, key, step=step)
        assert np.allclose(block, numeric, atol=atol), (
            f"jacobian mismatch for {key}:\nanalytic=\n{block}\n"
            f"numeric=\n{numeric}"
        )
