"""Shared helpers for factor tests."""

import numpy as np

from repro.factorgraph import numerical_jacobian


def assert_jacobians_match(factor, values, atol=1e-5):
    """Every analytic Jacobian block must match central finite differences."""
    analytic = factor.jacobians(values)
    assert analytic is not None, "factor has no analytic jacobians"
    for key, block in zip(factor.keys, analytic):
        numeric = numerical_jacobian(factor, values, key)
        assert np.allclose(block, numeric, atol=atol), (
            f"jacobian mismatch for {key}:\nanalytic=\n{block}\n"
            f"numeric=\n{numeric}"
        )
