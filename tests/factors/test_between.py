"""Tests for relative-pose factors (BetweenFactor, LiDAR, IMU)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LinearizationError
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import (
    BetweenFactor,
    IMUFactor,
    LiDARFactor,
    PriorFactor,
    odometry_measurement,
)
from repro.geometry import Pose

from tests.factors.conftest import assert_jacobians_match


def random_pose(seed, n=3):
    return Pose.random(n, np.random.default_rng(seed))


class TestErrorSemantics:
    def test_zero_error_at_exact_measurement(self):
        xi, xj = random_pose(0), random_pose(1)
        measured = xi.ominus(xj)
        f = BetweenFactor(X(0), X(1), measured)
        v = Values({X(0): xi, X(1): xj})
        assert np.allclose(f.unwhitened_error(v), np.zeros(6), atol=1e-9)

    def test_error_matches_equ3_composition(self):
        xi, xj, z = random_pose(2), random_pose(3), random_pose(4)
        f = BetweenFactor(X(0), X(1), z)
        v = Values({X(0): xi, X(1): xj})
        expected = xi.ominus(xj).ominus(z).vector()
        assert np.allclose(f.unwhitened_error(v), expected)

    def test_2d_error(self):
        xi = Pose.from_xytheta(1.0, 0.0, 0.0)
        xj = Pose.from_xytheta(0.0, 0.0, 0.0)
        z = Pose.from_xytheta(1.0, 0.0, 0.0)
        f = BetweenFactor(X(0), X(1), z)
        v = Values({X(0): xi, X(1): xj})
        assert np.allclose(f.unwhitened_error(v), np.zeros(3), atol=1e-12)

    def test_non_pose_measurement_rejected(self):
        with pytest.raises(LinearizationError):
            BetweenFactor(X(0), X(1), np.zeros(3))

    def test_noise_dim_mismatch_rejected(self):
        with pytest.raises(LinearizationError):
            BetweenFactor(X(0), X(1), Pose.identity(3), Isotropic(3, 1.0))


class TestJacobians:
    def test_jacobians_3d_random(self):
        f = BetweenFactor(X(0), X(1), random_pose(5))
        v = Values({X(0): random_pose(6), X(1): random_pose(7)})
        assert_jacobians_match(f, v)

    def test_jacobians_3d_near_identity(self):
        f = BetweenFactor(X(0), X(1), Pose.identity(3))
        v = Values({
            X(0): Pose.identity(3).retract(1e-4 * np.ones(6)),
            X(1): Pose.identity(3),
        })
        assert_jacobians_match(f, v)

    def test_jacobians_2d_random(self):
        rng = np.random.default_rng(8)
        f = BetweenFactor(X(0), X(1), Pose.random(2, rng))
        v = Values({X(0): Pose.random(2, rng), X(1): Pose.random(2, rng)})
        assert_jacobians_match(f, v)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 5000), st.integers(5001, 9999))
    def test_jacobians_3d_property(self, s1, s2):
        from hypothesis import assume

        f = BetweenFactor(X(0), X(1), random_pose(s1 + s2))
        v = Values({X(0): random_pose(s1), X(1): random_pose(s2)})
        # Exclude the SO(3) cut locus: at error angles near pi the Log
        # map is not smooth, so neither the analytic Jacobian nor finite
        # differences are meaningful there (real solvers never linearize
        # at the chart boundary).  Loose tolerance for the same reason.
        error_angle = np.linalg.norm(f.unwhitened_error(v)[:3])
        assume(error_angle < np.pi - 0.05)
        # step=1e-4: at large error angles the log map's evaluation
        # noise (~1e-10) would dominate a 1e-6 central difference.
        assert_jacobians_match(f, v, atol=1e-3, step=1e-4)


class TestSensorSpecializations:
    def test_lidar_measures_forward_motion(self):
        # z = x2 (-) x1: at the true poses the residual must vanish.
        x1, x2 = random_pose(10), random_pose(11)
        f = LiDARFactor(X(1), X(2), x2.ominus(x1))
        v = Values({X(1): x1, X(2): x2})
        assert np.allclose(f.unwhitened_error(v), np.zeros(6), atol=1e-9)

    def test_imu_measures_forward_motion(self):
        x1, x2 = random_pose(12), random_pose(13)
        f = IMUFactor(X(1), X(2), x2.ominus(x1))
        v = Values({X(1): x1, X(2): x2})
        assert np.allclose(f.unwhitened_error(v), np.zeros(6), atol=1e-9)

    def test_lidar_noise_tighter_than_imu(self):
        z = Pose.identity(3)
        lidar = LiDARFactor(X(0), X(1), z)
        imu = IMUFactor(X(0), X(1), z)
        # Tighter noise -> larger whitening weights.
        assert (lidar.noise.sqrt_information[0, 0]
                > imu.noise.sqrt_information[0, 0])

    def test_odometry_measurement_noiseless(self):
        a, b = random_pose(14), random_pose(15)
        z = odometry_measurement(a, b)
        assert z.almost_equal(b.ominus(a))

    def test_odometry_measurement_noisy_differs(self):
        rng = np.random.default_rng(16)
        a, b = random_pose(17), random_pose(18)
        z = odometry_measurement(a, b, rng, rot_sigma=0.1, trans_sigma=0.1)
        assert not z.almost_equal(b.ominus(a), tol=1e-6)


class TestPoseGraphOptimization:
    def test_loop_closure_corrects_drift(self):
        """A square loop with drifted initials converges back to truth."""
        rng = np.random.default_rng(19)
        truth = [
            Pose.from_xytheta(0.0, 0.0, 0.0),
            Pose.from_xytheta(1.0, 0.0, np.pi / 2),
            Pose.from_xytheta(1.0, 1.0, np.pi),
            Pose.from_xytheta(0.0, 1.0, -np.pi / 2),
        ]
        g = FactorGraph([PriorFactor(X(0), truth[0], Isotropic(3, 1e-3))])
        for i in range(4):
            j = (i + 1) % 4
            g.add(LiDARFactor(X(i), X(j), truth[j].ominus(truth[i])))

        initial = Values({X(0): truth[0]})
        for i in range(1, 4):
            initial.insert(X(i), truth[i].retract(0.2 * rng.standard_normal(3)))

        result = g.optimize(initial)
        assert result.converged
        for i, t in enumerate(truth):
            assert result.values.pose(X(i)).almost_equal(t, tol=1e-5)
