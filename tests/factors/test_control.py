"""Tests for control factors (the Fig. 7b LQR factor graph)."""

import numpy as np
import pytest

from repro.errors import LinearizationError
from repro.factorgraph import FactorGraph, Isotropic, U, Values, X
from repro.factors import (
    ControlCostFactor,
    DynamicsFactor,
    KinematicsFactor,
    StateCostFactor,
)

from tests.factors.conftest import assert_jacobians_match


def double_integrator(dt=0.1):
    a = np.array([[1.0, dt], [0.0, 1.0]])
    b = np.array([[0.5 * dt * dt], [dt]])
    return a, b


class TestDynamicsFactor:
    def test_zero_error_on_consistent_rollout(self):
        a, b = double_integrator()
        f = DynamicsFactor(X(0), U(0), X(1), a, b)
        x0 = np.array([1.0, 0.5])
        u0 = np.array([2.0])
        v = Values({X(0): x0, U(0): u0, X(1): a @ x0 + b @ u0})
        assert np.allclose(f.unwhitened_error(v), np.zeros(2))

    def test_jacobians(self):
        a, b = double_integrator()
        f = DynamicsFactor(X(0), U(0), X(1), a, b)
        rng = np.random.default_rng(0)
        v = Values({X(0): rng.standard_normal(2), U(0): rng.standard_normal(1),
                    X(1): rng.standard_normal(2)})
        assert_jacobians_match(f, v)

    def test_validation(self):
        with pytest.raises(LinearizationError):
            DynamicsFactor(X(0), U(0), X(1), np.zeros((2, 3)), np.zeros((2, 1)))
        with pytest.raises(LinearizationError):
            DynamicsFactor(X(0), U(0), X(1), np.eye(2), np.zeros((3, 1)))

    def test_dims(self):
        a, b = double_integrator()
        f = DynamicsFactor(X(0), U(0), X(1), a, b)
        assert f.state_dim == 2 and f.input_dim == 1


class TestCostFactors:
    def test_state_cost_pulls_to_reference(self):
        f = StateCostFactor(X(0), np.array([1.0, 2.0]))
        v = Values({X(0): np.zeros(2)})
        assert np.allclose(f.unwhitened_error(v), [-1.0, -2.0])
        assert_jacobians_match(f, v)

    def test_control_cost_penalizes_effort(self):
        f = ControlCostFactor(U(0), input_dim=2)
        v = Values({U(0): np.array([0.5, -0.5])})
        assert np.allclose(f.unwhitened_error(v), [0.5, -0.5])
        assert_jacobians_match(f, v)

    def test_control_cost_validation(self):
        with pytest.raises(LinearizationError):
            ControlCostFactor(U(0), input_dim=0)
        f = ControlCostFactor(U(0), input_dim=2)
        with pytest.raises(LinearizationError):
            f.unwhitened_error(Values({U(0): np.zeros(3)}))


class TestKinematicsFactor:
    def test_zero_inside_bounds(self):
        f = KinematicsFactor(X(0), indices=[1], limits=[2.0])
        v = Values({X(0): np.array([9.0, 1.5])})
        assert np.allclose(f.unwhitened_error(v), [0.0])

    def test_excess_penalized_symmetrically(self):
        f = KinematicsFactor(X(0), indices=[0], limits=[1.0])
        assert f.unwhitened_error(
            Values({X(0): np.array([3.0])}))[0] == pytest.approx(2.0)
        assert f.unwhitened_error(
            Values({X(0): np.array([-3.0])}))[0] == pytest.approx(2.0)

    def test_jacobians_outside_bounds(self):
        f = KinematicsFactor(X(0), indices=[0, 2], limits=[1.0, 0.5])
        v = Values({X(0): np.array([2.0, 0.0, -1.0])})
        assert_jacobians_match(f, v)

    def test_validation(self):
        with pytest.raises(LinearizationError):
            KinematicsFactor(X(0), indices=[0, 1], limits=[1.0])
        with pytest.raises(LinearizationError):
            KinematicsFactor(X(0), indices=[0], limits=[-1.0])


class TestLqrViaFactorGraph:
    def test_drives_double_integrator_to_origin(self):
        """Finite-horizon LQR solved as one factor-graph inference."""
        a, b = double_integrator(dt=0.2)
        horizon = 20
        x_init = np.array([2.0, 0.0])

        g = FactorGraph()
        v = Values()
        from repro.factors import PriorFactor

        g.add(PriorFactor(X(0), x_init, Isotropic(2, 1e-4)))
        for k in range(horizon):
            g.add(DynamicsFactor(X(k), U(k), X(k + 1), a, b,
                                 Isotropic(2, 1e-4)))
            g.add(ControlCostFactor(U(k), 1, Isotropic(1, 3.0)))
            g.add(StateCostFactor(X(k + 1), np.zeros(2), Isotropic(2, 1.0)))

        for k in range(horizon + 1):
            v.insert(X(k), x_init.copy())
        for k in range(horizon):
            v.insert(U(k), np.zeros(1))

        result = g.optimize(v)
        assert result.converged
        # The state must approach the origin by the end of the horizon.
        terminal = result.values.vector(X(horizon))
        assert np.linalg.norm(terminal) < 0.2
        # The rollout must satisfy the dynamics almost exactly.
        for k in range(horizon):
            xk = result.values.vector(X(k))
            uk = result.values.vector(U(k))
            xk1 = result.values.vector(X(k + 1))
            assert np.allclose(xk1, a @ xk + b @ uk, atol=1e-2)

    def test_matches_riccati_solution(self):
        """The factor-graph LQR control matches the Riccati recursion."""
        a, b = double_integrator(dt=0.5)
        q = np.eye(2)
        r = np.eye(1)
        horizon = 10
        x_init = np.array([1.0, -0.5])

        # Classic backward Riccati recursion.
        p = q.copy()
        gains = []
        for _ in range(horizon):
            k_gain = np.linalg.solve(r + b.T @ p @ b, b.T @ p @ a)
            gains.append(k_gain)
            p = q + a.T @ p @ (a - b @ k_gain)
        gains.reverse()
        u0_riccati = -gains[0] @ x_init

        from repro.factors import PriorFactor

        g = FactorGraph([PriorFactor(X(0), x_init, Isotropic(2, 1e-6))])
        for k in range(horizon):
            g.add(DynamicsFactor(X(k), U(k), X(k + 1), a, b,
                                 Isotropic(2, 1e-6)))
            g.add(ControlCostFactor(U(k), 1, Isotropic(1, 1.0)))
            g.add(StateCostFactor(X(k + 1), np.zeros(2), Isotropic(2, 1.0)))

        v = Values()
        for k in range(horizon + 1):
            v.insert(X(k), np.zeros(2))
        for k in range(horizon):
            v.insert(U(k), np.zeros(1))
        result = g.optimize(v)
        u0_graph = result.values.vector(U(0))
        assert np.allclose(u0_graph, u0_riccati, atol=1e-3)
