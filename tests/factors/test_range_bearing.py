"""Tests for range-bearing landmark factors."""

import numpy as np
import pytest

from repro.errors import LinearizationError
from repro.factorgraph import FactorGraph, Isotropic, Values, X, Y
from repro.factors import (
    PriorFactor,
    RangeBearingFactor,
    range_bearing_measurement,
)
from repro.geometry import Pose

from tests.factors.conftest import assert_jacobians_match


class TestErrorSemantics:
    def test_zero_error_at_truth(self):
        pose = Pose.from_xytheta(1.0, 2.0, 0.7)
        landmark = np.array([4.0, 3.0])
        r, b = range_bearing_measurement(pose, landmark)
        f = RangeBearingFactor(X(0), Y(0), r, b)
        v = Values({X(0): pose, Y(0): landmark})
        assert np.allclose(f.unwhitened_error(v), np.zeros(2), atol=1e-12)

    def test_range_error_component(self):
        pose = Pose.identity(2)
        f = RangeBearingFactor(X(0), Y(0), 1.0, 0.0)
        v = Values({X(0): pose, Y(0): np.array([3.0, 0.0])})
        assert np.allclose(f.unwhitened_error(v), [2.0, 0.0])

    def test_bearing_wraps(self):
        pose = Pose.from_xytheta(0.0, 0.0, np.pi - 0.1)
        landmark = np.array([-2.0, -0.1])
        r, b = range_bearing_measurement(pose, landmark)
        f = RangeBearingFactor(X(0), Y(0), r, b)
        # A heading perturbation that crosses the -pi/pi cut.
        v = Values({X(0): pose.retract(np.array([0.3, 0.0, 0.0])),
                    Y(0): landmark})
        error = f.unwhitened_error(v)
        assert abs(error[1]) < 1.0  # wrapped, not ~2*pi

    def test_validation(self):
        with pytest.raises(LinearizationError):
            RangeBearingFactor(X(0), Y(0), -1.0, 0.0)
        f = RangeBearingFactor(X(0), Y(0), 1.0, 0.0)
        with pytest.raises(LinearizationError):
            f.unwhitened_error(Values({X(0): Pose.identity(3),
                                       Y(0): np.zeros(2)}))
        with pytest.raises(LinearizationError):
            f.unwhitened_error(Values({X(0): Pose.identity(2),
                                       Y(0): np.zeros(3)}))
        with pytest.raises(LinearizationError):
            # Landmark at the robot: undefined bearing.
            f.unwhitened_error(Values({X(0): Pose.identity(2),
                                       Y(0): np.zeros(2)}))


class TestJacobians:
    def test_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        for seed in range(6):
            pose = Pose.random(2, rng)
            landmark = pose.t + np.array([2.0, 1.0]) + rng.standard_normal(2)
            r, b = range_bearing_measurement(pose, landmark)
            f = RangeBearingFactor(X(0), Y(0), r + 0.1, b - 0.05)
            v = Values({X(0): pose, Y(0): landmark})
            assert_jacobians_match(f, v, atol=1e-5)

    def test_block_shapes(self):
        f = RangeBearingFactor(X(0), Y(0), 2.0, 0.3)
        v = Values({X(0): Pose.identity(2), Y(0): np.array([2.0, 0.5])})
        gf = f.linearize(v)
        assert gf.block(X(0)).shape == (2, 3)
        assert gf.block(Y(0)).shape == (2, 2)


class TestLandmarkSlam:
    def test_triangulates_landmarks_from_two_poses(self):
        rng = np.random.default_rng(1)
        poses = [Pose.from_xytheta(0.0, 0.0, 0.0),
                 Pose.from_xytheta(2.0, 0.0, 0.5)]
        landmark = np.array([3.0, 2.0])

        graph = FactorGraph()
        values = Values()
        for i, pose in enumerate(poses):
            graph.add(PriorFactor(X(i), pose, Isotropic(3, 1e-4)))
            values.insert(X(i), pose)
            r, b = range_bearing_measurement(pose, landmark)
            graph.add(RangeBearingFactor(X(i), Y(0), r, b))
        values.insert(Y(0), landmark + rng.standard_normal(2))

        result = graph.optimize(values)
        assert result.converged
        assert np.allclose(result.values.vector(Y(0)), landmark, atol=1e-5)

    def test_full_slam_with_noisy_measurements(self):
        rng = np.random.default_rng(2)
        from repro.factors import LiDARFactor, odometry_measurement

        truth = [Pose.from_xytheta(i * 1.0, 0.2 * i, 0.1 * i)
                 for i in range(5)]
        landmarks = [np.array([2.0, 3.0]), np.array([4.0, -2.0])]

        graph = FactorGraph([PriorFactor(X(0), truth[0],
                                         Isotropic(3, 1e-3))])
        values = Values({X(0): truth[0]})
        for i in range(4):
            z = odometry_measurement(truth[i], truth[i + 1], rng,
                                     0.005, 0.02)
            graph.add(LiDARFactor(X(i), X(i + 1), z))
            values.insert(X(i + 1),
                          truth[i + 1].retract(0.1 * rng.standard_normal(3)))
        for j, landmark in enumerate(landmarks):
            values.insert(Y(j), landmark + 0.3 * rng.standard_normal(2))
            for i, pose in enumerate(truth):
                r, b = range_bearing_measurement(pose, landmark, rng,
                                                 0.05, 0.01)
                graph.add(RangeBearingFactor(X(i), Y(j), r, b))

        result = graph.optimize(values)
        assert result.converged
        for j, landmark in enumerate(landmarks):
            assert np.linalg.norm(result.values.vector(Y(j)) - landmark) < 0.2
