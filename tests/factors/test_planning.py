"""Tests for planning constraint factors (Fig. 7a)."""

import numpy as np
import pytest

from repro.errors import LinearizationError
from repro.factorgraph import FactorGraph, Isotropic, Values, V, X
from repro.factors import (
    CircleObstacle,
    CollisionFreeFactor,
    GoalFactor,
    ObstacleField,
    SmoothnessFactor,
    VelocityLimitFactor,
)
from repro.factorgraph.factor import prior_on_vector

from tests.factors.conftest import assert_jacobians_match


def state(q, v):
    return np.concatenate([np.atleast_1d(q), np.atleast_1d(v)]).astype(float)


class TestSmoothnessFactor:
    def test_zero_error_on_constant_velocity(self):
        f = SmoothnessFactor(X(0), X(1), dof=2, dt=0.5)
        v = Values({
            X(0): state([0.0, 0.0], [1.0, 2.0]),
            X(1): state([0.5, 1.0], [1.0, 2.0]),
        })
        assert np.allclose(f.unwhitened_error(v), np.zeros(4))

    def test_error_on_velocity_change(self):
        f = SmoothnessFactor(X(0), X(1), dof=1, dt=1.0)
        v = Values({X(0): state([0.0], [1.0]), X(1): state([1.0], [2.0])})
        assert np.allclose(f.unwhitened_error(v), [0.0, 1.0])

    def test_jacobians(self):
        f = SmoothnessFactor(X(0), X(1), dof=3, dt=0.2)
        rng = np.random.default_rng(0)
        v = Values({X(0): rng.standard_normal(6), X(1): rng.standard_normal(6)})
        assert_jacobians_match(f, v)

    def test_validation(self):
        with pytest.raises(LinearizationError):
            SmoothnessFactor(X(0), X(1), dof=0, dt=1.0)
        with pytest.raises(LinearizationError):
            SmoothnessFactor(X(0), X(1), dof=1, dt=0.0)
        f = SmoothnessFactor(X(0), X(1), dof=2, dt=1.0)
        with pytest.raises(LinearizationError):
            f.unwhitened_error(Values({X(0): np.zeros(3), X(1): np.zeros(4)}))


class TestObstacles:
    def test_circle_signed_distance(self):
        obs = CircleObstacle(center=(0.0, 0.0), radius=1.0)
        assert obs.signed_distance(np.array([2.0, 0.0])) == pytest.approx(1.0)
        assert obs.signed_distance(np.array([0.5, 0.0])) == pytest.approx(-0.5)

    def test_circle_gradient_points_away(self):
        obs = CircleObstacle(center=(1.0, 1.0), radius=0.5)
        g = obs.gradient(np.array([3.0, 1.0]))
        assert np.allclose(g, [1.0, 0.0])

    def test_gradient_at_center_is_finite(self):
        obs = CircleObstacle(center=(0.0, 0.0), radius=1.0)
        g = obs.gradient(np.zeros(2))
        assert np.isfinite(g).all() and np.linalg.norm(g) == pytest.approx(1.0)

    def test_field_takes_nearest(self):
        field = ObstacleField([
            CircleObstacle((0.0, 0.0), 1.0),
            CircleObstacle((10.0, 0.0), 1.0),
        ])
        assert field.signed_distance(np.array([8.0, 0.0])) == pytest.approx(1.0)

    def test_empty_field_is_free_space(self):
        field = ObstacleField([])
        assert field.signed_distance(np.zeros(2)) == float("inf")
        assert np.allclose(field.gradient(np.zeros(2)), 0.0)


class TestCollisionFreeFactor:
    def field(self):
        return ObstacleField([CircleObstacle((0.0, 0.0), 1.0)])

    def test_zero_error_far_from_obstacle(self):
        f = CollisionFreeFactor(V(0), self.field(), position_dims=2,
                                epsilon=0.5)
        v = Values({V(0): state([5.0, 0.0], [0.0, 0.0])})
        assert np.allclose(f.unwhitened_error(v), [0.0])

    def test_positive_error_inside_margin(self):
        f = CollisionFreeFactor(V(0), self.field(), position_dims=2,
                                epsilon=0.5)
        v = Values({V(0): state([1.2, 0.0], [0.0, 0.0])})
        assert f.unwhitened_error(v)[0] == pytest.approx(0.3)

    def test_jacobians_inside_margin(self):
        f = CollisionFreeFactor(V(0), self.field(), position_dims=2,
                                epsilon=0.5)
        v = Values({V(0): state([1.2, 0.3], [0.1, 0.0])})
        assert_jacobians_match(f, v)

    def test_jacobian_zero_outside_margin(self):
        f = CollisionFreeFactor(V(0), self.field(), position_dims=2,
                                epsilon=0.5)
        v = Values({V(0): state([5.0, 0.0], [0.0, 0.0])})
        assert np.allclose(f.jacobians(v)[0], 0.0)

    def test_validation(self):
        with pytest.raises(LinearizationError):
            CollisionFreeFactor(V(0), self.field(), position_dims=2,
                                epsilon=0.0)
        f = CollisionFreeFactor(V(0), self.field(), position_dims=4)
        with pytest.raises(LinearizationError):
            f.unwhitened_error(Values({V(0): np.zeros(2)}))

    def test_optimization_pushes_point_out(self):
        field = self.field()
        g = FactorGraph([
            CollisionFreeFactor(V(0), field, position_dims=2, epsilon=0.5,
                                noise=Isotropic(1, 0.01)),
            prior_on_vector(V(0), state([0.9, 0.0], [0.0, 0.0]), sigma=10.0),
        ])
        v = Values({V(0): state([0.9, 0.0], [0.0, 0.0])})
        result = g.optimize(v)
        final = result.values.vector(V(0))[:2]
        assert field.signed_distance(final) > 0.4


class TestVelocityLimitFactor:
    def test_zero_below_limit(self):
        f = VelocityLimitFactor(V(0), dof=2, v_max=2.0)
        v = Values({V(0): state([0.0, 0.0], [1.0, 0.0])})
        assert np.allclose(f.unwhitened_error(v), [0.0])

    def test_excess_speed_penalized(self):
        f = VelocityLimitFactor(V(0), dof=2, v_max=1.0)
        v = Values({V(0): state([0.0, 0.0], [3.0, 4.0])})
        assert f.unwhitened_error(v)[0] == pytest.approx(4.0)

    def test_jacobians_above_limit(self):
        f = VelocityLimitFactor(V(0), dof=2, v_max=1.0)
        v = Values({V(0): state([0.5, -0.1], [1.5, 2.0])})
        assert_jacobians_match(f, v)

    def test_validation(self):
        with pytest.raises(LinearizationError):
            VelocityLimitFactor(V(0), dof=2, v_max=-1.0)
        f = VelocityLimitFactor(V(0), dof=2, v_max=1.0)
        with pytest.raises(LinearizationError):
            f.unwhitened_error(Values({V(0): np.zeros(3)}))


class TestGoalFactor:
    def test_error_on_configuration_only(self):
        f = GoalFactor(V(0), np.array([1.0, 1.0]), dof=2)
        v = Values({V(0): state([2.0, 0.0], [9.0, 9.0])})
        assert np.allclose(f.unwhitened_error(v), [1.0, -1.0])

    def test_jacobians(self):
        f = GoalFactor(V(0), np.array([0.5, -0.5]), dof=2)
        v = Values({V(0): state([1.0, 1.0], [0.3, 0.1])})
        assert_jacobians_match(f, v)

    def test_goal_dim_validated(self):
        with pytest.raises(LinearizationError):
            GoalFactor(V(0), np.zeros(3), dof=2)


class TestTrajectoryOptimization:
    def test_plan_avoids_obstacle(self):
        """A straight-line seed through an obstacle bends around it."""
        field = ObstacleField([CircleObstacle((2.5, 0.0), 0.8)])
        n, dt, dof = 11, 0.5, 2
        start, goal = np.zeros(2), np.array([5.0, 0.0])

        g = FactorGraph()
        v = Values()
        for i in range(n):
            alpha = i / (n - 1)
            # Slightly bowed seed: a perfectly straight line through the
            # obstacle center is a symmetric saddle the optimizer cannot
            # leave (the SDF gradient has no lateral component there).
            q = start + alpha * (goal - start)
            q = q + np.array([0.0, 0.3 * np.sin(np.pi * alpha)])
            v.insert(V(i), state(q, (goal - start) / ((n - 1) * dt)))
            g.add(CollisionFreeFactor(V(i), field, position_dims=2,
                                      epsilon=0.4, noise=Isotropic(1, 0.05)))
        for i in range(n - 1):
            g.add(SmoothnessFactor(V(i), V(i + 1), dof=dof, dt=dt))
        g.add(GoalFactor(V(0), start, dof=dof, noise=Isotropic(2, 1e-3)))
        g.add(GoalFactor(V(n - 1), goal, dof=dof, noise=Isotropic(2, 1e-3)))

        result = g.optimize(v)
        # Endpoints pinned, every state collision-free.  (GN may settle on
        # either of the symmetric homotopy classes; we only require a
        # valid plan, as the paper's mission success metric does.)
        for i in range(n):
            q_i = result.values.vector(V(i))[:2]
            assert field.signed_distance(q_i) > 0.0
        assert np.allclose(result.values.vector(V(0))[:2], start, atol=1e-2)
        assert np.allclose(result.values.vector(V(n - 1))[:2], goal, atol=1e-2)
