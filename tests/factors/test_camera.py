"""Tests for the pinhole camera and camera projection factors."""

import numpy as np
import pytest

from repro.errors import LinearizationError
from repro.factorgraph import FactorGraph, Isotropic, Values, X, Y
from repro.factors import CameraFactor, PinholeCamera, PriorFactor
from repro.geometry import Pose

from tests.factors.conftest import assert_jacobians_match


def looking_down_z_pose():
    """Identity pose: camera looks along +z in the world frame."""
    return Pose.identity(3)


class TestPinholeCamera:
    def test_principal_point_projection(self):
        cam = PinholeCamera(fx=100.0, fy=100.0, cx=320.0, cy=240.0)
        pix = cam.project(np.array([0.0, 0.0, 5.0]))
        assert np.allclose(pix, [320.0, 240.0])

    def test_offset_projection(self):
        cam = PinholeCamera(fx=100.0, fy=200.0, cx=0.0, cy=0.0)
        pix = cam.project(np.array([1.0, 1.0, 2.0]))
        assert np.allclose(pix, [50.0, 100.0])

    def test_behind_camera_rejected(self):
        cam = PinholeCamera()
        with pytest.raises(LinearizationError):
            cam.project(np.array([0.0, 0.0, -1.0]))
        with pytest.raises(LinearizationError):
            cam.projection_jacobian(np.array([0.0, 0.0, 0.0]))

    def test_projection_jacobian_numeric(self):
        cam = PinholeCamera()
        p = np.array([0.4, -0.2, 3.0])
        analytic = cam.projection_jacobian(p)
        numeric = np.zeros((2, 3))
        eps = 1e-7
        for i in range(3):
            d = np.zeros(3)
            d[i] = eps
            numeric[:, i] = (cam.project(p + d) - cam.project(p - d)) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-5)


class TestCameraFactor:
    def test_zero_error_at_true_geometry(self):
        cam = PinholeCamera()
        pose = looking_down_z_pose()
        landmark = np.array([0.5, -0.3, 4.0])
        measured = cam.project(pose.rotation.T @ (landmark - pose.t))
        f = CameraFactor(X(0), Y(0), measured, cam)
        v = Values({X(0): pose, Y(0): landmark})
        assert np.allclose(f.unwhitened_error(v), np.zeros(2), atol=1e-12)

    def test_block_shapes_match_paper(self):
        # Sec. 5.1: camera factor blocks are 2x6 (pose) and 2x3 (landmark).
        f = CameraFactor(X(0), Y(0), np.array([320.0, 240.0]))
        v = Values({X(0): looking_down_z_pose(),
                    Y(0): np.array([0.0, 0.0, 5.0])})
        gf = f.linearize(v)
        assert gf.block(X(0)).shape == (2, 6)
        assert gf.block(Y(0)).shape == (2, 3)
        assert gf.rhs.shape == (2,)

    def test_jacobians_random_geometry(self):
        rng = np.random.default_rng(0)
        for seed in range(5):
            pose = Pose(0.2 * rng.standard_normal(3), rng.standard_normal(3))
            # Put the landmark safely in front of the camera.
            landmark = pose.transform_point(
                np.array([0.3, -0.2, 5.0]) + 0.5 * rng.standard_normal(3)
            )
            cam = PinholeCamera()
            measured = cam.project(pose.rotation.T @ (landmark - pose.t))
            f = CameraFactor(X(0), Y(0), measured + rng.standard_normal(2), cam)
            v = Values({X(0): pose, Y(0): landmark})
            assert_jacobians_match(f, v, atol=1e-3)

    def test_requires_3d_pose(self):
        f = CameraFactor(X(0), Y(0), np.zeros(2))
        v = Values({X(0): Pose.identity(2), Y(0): np.zeros(3)})
        with pytest.raises(LinearizationError):
            f.unwhitened_error(v)

    def test_requires_3d_landmark(self):
        f = CameraFactor(X(0), Y(0), np.zeros(2))
        v = Values({X(0): Pose.identity(3), Y(0): np.zeros(2)})
        with pytest.raises(LinearizationError):
            f.unwhitened_error(v)

    def test_bad_pixel_shape_rejected(self):
        with pytest.raises(LinearizationError):
            CameraFactor(X(0), Y(0), np.zeros(3))

    def test_triangulation_via_optimization(self):
        """Two known poses observing one landmark recover its position."""
        cam = PinholeCamera()
        poses = [
            Pose.identity(3),
            Pose(np.zeros(3), np.array([1.0, 0.0, 0.0])),
        ]
        landmark = np.array([0.5, 0.2, 6.0])
        g = FactorGraph()
        v = Values()
        for i, p in enumerate(poses):
            g.add(PriorFactor(X(i), p, Isotropic(6, 1e-6)))
            v.insert(X(i), p)
            pix = cam.project(p.rotation.T @ (landmark - p.t))
            g.add(CameraFactor(X(i), Y(0), pix, cam))
        v.insert(Y(0), landmark + np.array([0.3, -0.3, 1.0]))
        result = g.optimize(v)
        assert np.allclose(result.values.vector(Y(0)), landmark, atol=1e-5)
