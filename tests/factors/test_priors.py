"""Tests for prior and GPS factors."""

import numpy as np
import pytest

from repro.errors import LinearizationError
from repro.factorgraph import Isotropic, Values, X
from repro.factors import GPSFactor, PriorFactor
from repro.geometry import Pose

from tests.factors.conftest import assert_jacobians_match


class TestPriorFactorVector:
    def test_zero_error_at_prior(self):
        f = PriorFactor(X(0), np.array([1.0, 2.0]))
        v = Values({X(0): np.array([1.0, 2.0])})
        assert np.allclose(f.unwhitened_error(v), 0.0)

    def test_error_is_difference(self):
        f = PriorFactor(X(0), np.array([1.0]))
        v = Values({X(0): np.array([3.0])})
        assert np.allclose(f.unwhitened_error(v), [2.0])

    def test_jacobian_identity(self):
        f = PriorFactor(X(0), np.array([1.0, 2.0, 3.0]))
        v = Values({X(0): np.array([0.0, 0.0, 0.0])})
        assert_jacobians_match(f, v)

    def test_noise_dim_mismatch_rejected(self):
        with pytest.raises(LinearizationError):
            PriorFactor(X(0), np.zeros(3), Isotropic(2, 1.0))

    def test_pose_prior_on_vector_value_rejected(self):
        f = PriorFactor(X(0), Pose.identity(2))
        v = Values({X(0): np.zeros(3)})
        with pytest.raises(LinearizationError):
            f.unwhitened_error(v)


class TestPriorFactorPose:
    def test_zero_error_at_prior_pose(self):
        rng = np.random.default_rng(0)
        prior = Pose.random(3, rng)
        f = PriorFactor(X(0), prior)
        assert np.allclose(
            f.unwhitened_error(Values({X(0): prior})), np.zeros(6), atol=1e-12
        )

    def test_jacobians_3d(self):
        rng = np.random.default_rng(1)
        prior = Pose.random(3, rng)
        current = prior.retract(0.3 * rng.standard_normal(6))
        assert_jacobians_match(
            PriorFactor(X(0), prior), Values({X(0): current})
        )

    def test_jacobians_2d(self):
        prior = Pose.from_xytheta(1.0, 2.0, 0.5)
        current = Pose.from_xytheta(1.3, 1.8, 0.9)
        assert_jacobians_match(
            PriorFactor(X(0), prior), Values({X(0): current})
        )

    def test_anchors_optimization(self):
        from repro.factorgraph import FactorGraph

        prior = Pose.from_xytheta(2.0, -1.0, 0.3)
        g = FactorGraph([PriorFactor(X(0), prior, Isotropic(3, 0.01))])
        result = g.optimize(Values({X(0): Pose.identity(2)}))
        assert result.values.pose(X(0)).almost_equal(prior, tol=1e-6)


class TestGPSFactor:
    def test_error_is_position_difference(self):
        f = GPSFactor(X(0), np.array([1.0, 1.0]))
        v = Values({X(0): Pose.from_xytheta(2.0, 3.0, 0.7)})
        assert np.allclose(f.unwhitened_error(v), [1.0, 2.0])

    def test_heading_does_not_affect_error(self):
        f = GPSFactor(X(0), np.zeros(2))
        e1 = f.unwhitened_error(Values({X(0): Pose.from_xytheta(1.0, 0.0, 0.0)}))
        e2 = f.unwhitened_error(Values({X(0): Pose.from_xytheta(1.0, 0.0, 2.0)}))
        assert np.allclose(e1, e2)

    def test_jacobians_2d(self):
        f = GPSFactor(X(0), np.array([1.0, -1.0]))
        assert_jacobians_match(f, Values({X(0): Pose.from_xytheta(0.5, 0.2, 1.1)}))

    def test_jacobians_3d(self):
        rng = np.random.default_rng(2)
        f = GPSFactor(X(0), rng.standard_normal(3))
        assert_jacobians_match(f, Values({X(0): Pose.random(3, rng)}))

    def test_dim_mismatch_rejected(self):
        f = GPSFactor(X(0), np.zeros(3))
        with pytest.raises(LinearizationError):
            f.unwhitened_error(Values({X(0): Pose.identity(2)}))

    def test_bad_measurement_dim_rejected(self):
        with pytest.raises(LinearizationError):
            GPSFactor(X(0), np.zeros(4))
