"""Tests for the BENCH harness and the regression diff gate."""

import copy
import json
import pathlib

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    diff_documents,
    load_bench,
    render_diff,
    run_bench,
    write_bench,
)
from repro.bench.core import summarize
from repro.obs.__main__ import main as obs_main


@pytest.fixture(scope="module")
def document():
    return run_bench(quick=True, seed=0)


class TestRunBench:
    def test_schema_and_structure(self, document):
        assert document["schema"] == BENCH_SCHEMA
        assert document["mode"] == "quick"
        assert document["seed"] == 0
        assert document["workloads"]

    def test_one_workload_per_application(self, document):
        from repro.apps import all_applications

        expected = {f"{app.name}/ooo" for app in all_applications()}
        assert set(document["workloads"]) == expected

    def test_workload_entries_carry_gated_metrics(self, document):
        for entry in document["workloads"].values():
            assert entry["total_cycles"] > 0
            assert entry["energy_mj"] > 0.0
            assert entry["attribution"]["coverage"] >= 0.95
            assert entry["critical_path"]["length_cycles"] > 0

    def test_write_and_load_round_trip(self, document, tmp_path):
        path = tmp_path / "BENCH_quick.json"
        write_bench(path, document)
        loaded = load_bench(path)
        assert loaded["workloads"].keys() == document["workloads"].keys()

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ValueError):
            load_bench(path)

    def test_determinism(self, document):
        again = run_bench(quick=True, seed=0)
        for key, entry in document["workloads"].items():
            assert again["workloads"][key]["total_cycles"] == \
                entry["total_cycles"]

    def test_summarize_lists_every_workload(self, document):
        text = summarize(document)
        for key in document["workloads"]:
            assert key in text

    def test_workloads_carry_cycle_accounting_without_chain(self,
                                                            document):
        # The accounting summary ships in BENCH, but the per-step chain
        # (like the schedule) is trace-only payload.
        for entry in document["workloads"].values():
            acc = entry["cycle_accounting"]
            assert acc["total_cycles"] == entry["total_cycles"]
            assert abs(acc["identity_error"]) <= 0.5
            assert "critical_chain" not in acc

    def test_bottleneck_section_is_advisory_per_workload(self, document):
        # Present for every workload, analytic-only, and shaped for the
        # CLI hint — and, like 'compile', invisible to the diff gate.
        section = document["bottleneck"]
        assert set(section) == set(document["workloads"])
        for key, entry in section.items():
            assert entry["wait_total_cycles"] >= 0.0
            assert entry["roofline_bound"] in ("compute", "memory")
            top = entry["top_candidate"]
            if top is not None:
                assert top["predicted_speedup"] >= 1.0
                assert not top.get("validated")   # analytic, no resim
                assert "measured_cycles" not in top

    def test_bottleneck_section_ignored_by_the_diff_gate(self, document):
        mutated = copy.deepcopy(document)
        mutated["bottleneck"] = {}
        report = diff_documents(document, mutated, exact=True)
        assert report["regressions"] == []


class TestSolveWallclock:
    def test_section_covers_every_application(self, document):
        from repro.apps import all_applications

        section = document["solve_wall_clock"]
        assert set(section["apps"]) == \
            {app.name for app in all_applications()}
        assert section["repeats"] >= 1
        assert {"python", "numpy", "cpu_count"} <= set(section["host"])

    def test_entries_carry_robust_statistics_and_a_profile(self,
                                                           document):
        for entry in document["solve_wall_clock"]["apps"].values():
            assert entry["median_s"] > 0.0
            assert entry["mad_s"] >= 0.0
            assert entry["min_s"] <= entry["median_s"] <= entry["max_s"]
            assert entry["instructions"] > 0
            profile = entry["profile"]
            # The profiled repeat interprets the same program once.
            assert profile["programs"] == 1
            assert profile["instructions"] == entry["instructions"]
            assert profile["by_opcode"]

    def test_measure_wallclock_off_omits_the_section(self):
        from repro.bench.core import bench_document

        document = bench_document({}, quick=True, seed=0,
                                  wallclock_section=None)
        assert "solve_wall_clock" not in document

    def test_summarize_includes_wallclock_lines(self, document):
        text = summarize(document)
        assert "solve wall-clock" in text
        assert "us/instr" in text

    def test_section_ignored_by_the_exact_diff_gate(self, document):
        mutated = copy.deepcopy(document)
        mutated["solve_wall_clock"]["apps"] = {}
        report = diff_documents(document, mutated, exact=True)
        assert report["regressions"] == []

    def test_unknown_sections_do_fail_the_exact_gate(self, document):
        # The skip list is an allowlist: a section NOT on it must match
        # deeply, so silent divergence can't hide outside "workloads".
        mutated = copy.deepcopy(document)
        mutated["mystery"] = {"anything": 1}
        report = diff_documents(document, mutated, exact=True)
        assert any(r["workload"] == "[section] mystery"
                   for r in report["regressions"])
        # Threshold (non-exact) mode stays workload-only.
        loose = diff_documents(document, mutated, threshold=0.10)
        assert not loose["regressions"]


class TestFleetSection:
    def test_document_carries_per_executor_latency_series(self, document):
        fleet = document["fleet"]
        assert fleet["schema"] == "repro.obs.fleet/1"
        latency = [e for e in fleet["series"]
                   if e["name"] == "fleet.solve.latency_s"]
        executors = {e["labels"]["executor"] for e in latency}
        assert executors == {"interpreter", "fused"}
        apps = {e["labels"]["app"] for e in latency}
        assert len(apps) >= 4
        assert all(e["labels"]["session"] == "bench" for e in latency)
        # One rollup window per application.
        assert sorted(w["key"] for w in fleet["windows"]) == sorted(apps)

    def test_wallclock_sketches_do_not_fail_the_exact_gate(self, document):
        # Latency sketches are host timing; the exact gate compares the
        # fleet section through exact_view, which drops seconds-unit
        # series.
        mutated = copy.deepcopy(document)
        for entry in mutated["fleet"]["series"]:
            if entry["unit"] == "seconds":
                entry["sketch"]["sum"] += 1.0
        report = diff_documents(document, mutated, exact=True)
        assert report["regressions"] == []

    def test_count_series_do_fail_the_exact_gate(self, document):
        mutated = copy.deepcopy(document)
        totals = [e for e in mutated["fleet"]["series"]
                  if e["name"] == "fleet.solve.total"]
        totals[0]["value"] += 1.0
        report = diff_documents(document, mutated, exact=True)
        assert any(r["workload"] == "[section] fleet"
                   for r in report["regressions"])

    def test_no_wallclock_run_has_no_fleet_section(self):
        document = run_bench(quick=True, seed=0, measure_wallclock=False)
        assert "fleet" not in document


def regress(document, factor=1.2, metric="total_cycles"):
    worse = copy.deepcopy(document)
    key = sorted(worse["workloads"])[0]
    entry = worse["workloads"][key]
    entry[metric] = type(entry[metric])(entry[metric] * factor)
    return worse, key


class TestDiff:
    def test_identical_documents_pass(self, document):
        diff = diff_documents(document, document, threshold=0.10)
        assert not diff["regressions"]
        assert "OK" in render_diff(diff)

    def test_twenty_percent_cycle_regression_fails(self, document):
        """Acceptance criterion: a synthetic +20% must trip the gate."""
        worse, key = regress(document, 1.2, "total_cycles")
        diff = diff_documents(document, worse, threshold=0.10)
        assert any(r["workload"] == key and r["metric"] == "cycles"
                   for r in diff["regressions"])
        assert "FAIL" in render_diff(diff)

    def test_energy_regression_fails_too(self, document):
        worse, key = regress(document, 1.5, "energy_mj")
        diff = diff_documents(document, worse, threshold=0.10)
        assert any(r["metric"] == "energy" for r in diff["regressions"])

    def test_improvement_is_not_a_regression(self, document):
        better, _ = regress(document, 0.5, "total_cycles")
        diff = diff_documents(document, better, threshold=0.10)
        assert not diff["regressions"]
        assert diff["improvements"]

    def test_within_threshold_passes(self, document):
        slightly = regress(document, 1.05, "total_cycles")[0]
        diff = diff_documents(document, slightly, threshold=0.10)
        assert not diff["regressions"]

    def test_disjoint_workloads_reported_not_failed(self, document):
        renamed = copy.deepcopy(document)
        key = sorted(renamed["workloads"])[0]
        renamed["workloads"]["NewApp/ooo"] = \
            renamed["workloads"].pop(key)
        diff = diff_documents(document, renamed, threshold=0.10)
        assert key in diff["only_old"]
        assert "NewApp/ooo" in diff["only_new"]
        assert not diff["regressions"]


class TestDiffCli:
    def test_exit_zero_on_identical(self, document, tmp_path):
        path = tmp_path / "a.json"
        write_bench(path, document)
        assert obs_main(["diff", str(path), str(path)]) == 0

    def test_exit_nonzero_on_regression(self, document, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        write_bench(old, document)
        write_bench(new, regress(document, 1.2, "total_cycles")[0])
        assert obs_main(["diff", str(old), str(new),
                         "--threshold", "0.10"]) == 1

    def test_missing_baseline_exits_two_with_one_line(
            self, document, tmp_path, capsys):
        new = tmp_path / "new.json"
        write_bench(new, document)
        missing = tmp_path / "does-not-exist.json"
        assert obs_main(["diff", str(missing), str(new)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro.obs diff: ")
        assert err.count("\n") == 1

    def test_unreadable_baseline_exits_two(self, document, tmp_path,
                                           capsys):
        old = tmp_path / "old.json"
        old.write_text("{not json")
        new = tmp_path / "new.json"
        write_bench(new, document)
        assert obs_main(["diff", str(old), str(new)]) == 2
        assert "repro.obs diff: " in capsys.readouterr().err

    def test_foreign_schema_exits_two(self, document, tmp_path, capsys):
        old = tmp_path / "old.json"
        old.write_text(json.dumps({"schema": "someone-else/9"}))
        new = tmp_path / "new.json"
        write_bench(new, document)
        assert obs_main(["diff", str(old), str(new)]) == 2
        assert "repro.obs diff: " in capsys.readouterr().err


class TestBenchCli:
    """Flag wiring for ``python -m repro.bench`` (run_bench is stubbed
    with a canned document so these stay fast)."""

    def canned_document(self, wallclock=True):
        from repro.bench.core import bench_document

        section = None
        if wallclock:
            section = {
                "repeats": 2,
                "host": {"python": "3.11"},
                "apps": {"App": {"median_s": 0.01, "mad_s": 0.0,
                                 "instructions": 5}},
            }
        return bench_document(
            {"App/ooo": {"total_cycles": 1, "energy_mj": 1.0}},
            quick=True, seed=0, wallclock_section=section)

    def run_cli(self, monkeypatch, tmp_path, argv, wallclock=True):
        import repro.bench.__main__ as cli

        captured = {}

        def fake_run_bench(**kwargs):
            captured.update(kwargs)
            return self.canned_document(wallclock=wallclock)

        monkeypatch.setattr(cli, "run_bench", fake_run_bench)
        out = tmp_path / "BENCH.json"
        history = tmp_path / "history"
        rc = cli.main(argv + ["--output", str(out),
                              "--history-dir", str(history)])
        return rc, captured, history / "solve_wallclock.jsonl"

    def test_repeat_flag_reaches_run_bench(self, monkeypatch, tmp_path):
        rc, captured, _ = self.run_cli(
            monkeypatch, tmp_path, ["--quick", "--repeat", "9"])
        assert rc == 0
        assert captured["wallclock_repeats"] == 9
        assert captured["measure_wallclock"] is True

    def test_no_wallclock_flag(self, monkeypatch, tmp_path):
        rc, captured, history = self.run_cli(
            monkeypatch, tmp_path, ["--quick", "--no-wallclock"],
            wallclock=False)
        assert rc == 0
        assert captured["measure_wallclock"] is False
        assert not history.exists()   # no section, no history append

    def test_history_appended_by_default(self, monkeypatch, tmp_path):
        rc, _, history = self.run_cli(
            monkeypatch, tmp_path, ["--quick"])
        assert rc == 0
        lines = history.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["apps"]["App"]["median_s"] == 0.01

    def test_no_history_flag_skips_the_append(self, monkeypatch,
                                              tmp_path):
        rc, _, history = self.run_cli(
            monkeypatch, tmp_path, ["--quick", "--no-history"])
        assert rc == 0
        assert not history.exists()

    def test_invalid_repeat_rejected(self, monkeypatch, tmp_path):
        import repro.bench.__main__ as cli

        with pytest.raises(SystemExit):
            cli.main(["--quick", "--repeat", "0"])


class TestCommittedBaseline:
    def test_baseline_matches_current_tree(self, document):
        """The CI gate must be green on the committed baseline."""
        path = (pathlib.Path(__file__).resolve().parents[2]
                / "benchmarks" / "baseline" / "BENCH_seed.json")
        baseline = load_bench(path)
        diff = diff_documents(baseline, document, threshold=0.10)
        assert not diff["regressions"], render_diff(diff)
