"""Tests for the bench wall-clock history store (:mod:`repro.bench.history`)."""

import json

import pytest

from repro.bench.core import bench_document
from repro.bench.history import (
    HISTORY_FILENAME,
    HISTORY_SCHEMA,
    append_history,
    git_sha,
    history_entry,
    history_path,
    host_fingerprint,
    load_history,
)


def wallclock_document():
    return bench_document(
        {"App/ooo": {"total_cycles": 10, "energy_mj": 1.0}},
        quick=True, seed=7,
        wallclock_section={
            "repeats": 3,
            "host": {"python": "3.11", "numpy": "2.0"},
            "apps": {
                "App": {"median_s": 0.025, "mad_s": 0.001,
                        "mean_s": 0.026, "min_s": 0.024, "max_s": 0.03,
                        "instructions": 1200, "profile": {}},
            },
        })


class TestHistoryEntry:
    def test_distills_the_wallclock_section(self):
        entry = history_entry(wallclock_document(), sha="deadbeef",
                              timestamp=1700000000.0)
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["sha"] == "deadbeef"
        assert entry["mode"] == "quick"
        assert entry["seed"] == 7
        assert entry["repeats"] == 3
        assert entry["iso_time"].endswith("Z")
        assert entry["apps"]["App"] == {
            "median_s": 0.025, "mad_s": 0.001, "instructions": 1200,
        }
        # The per-opcode profile stays in the BENCH document; history
        # lines carry only the summary statistics.
        assert "profile" not in json.dumps(entry)

    def test_rejects_document_without_wallclock(self):
        document = bench_document(
            {"App/ooo": {"total_cycles": 10, "energy_mj": 1.0}},
            quick=True, seed=0)
        with pytest.raises(ValueError, match="solve_wall_clock"):
            history_entry(document)

    def test_entry_is_json_serializable(self):
        json.dumps(history_entry(wallclock_document(), sha="x",
                                 timestamp=0.0))


class TestAppendAndLoad:
    def test_round_trip(self, tmp_path):
        directory = str(tmp_path / "history")
        entry = history_entry(wallclock_document(), sha="aaa",
                              timestamp=1.0)
        path = append_history(entry, directory=directory)
        assert path == history_path(directory)
        assert path.endswith(HISTORY_FILENAME)
        entries, skipped = load_history(directory)
        assert skipped == 0
        assert entries == [entry]

    def test_appends_preserve_order(self, tmp_path):
        directory = str(tmp_path / "history")
        for i, sha in enumerate(["a", "b", "c"]):
            append_history(
                history_entry(wallclock_document(), sha=sha,
                              timestamp=float(i)),
                directory=directory)
        entries, _ = load_history(directory)
        assert [e["sha"] for e in entries] == ["a", "b", "c"]

    def test_load_accepts_file_or_directory(self, tmp_path):
        directory = str(tmp_path / "history")
        path = append_history(
            history_entry(wallclock_document(), sha="a", timestamp=0.0),
            directory=directory)
        from_dir, _ = load_history(directory)
        from_file, _ = load_history(path)
        assert from_dir == from_file

    def test_missing_file_is_an_empty_series(self, tmp_path):
        entries, skipped = load_history(str(tmp_path / "nowhere"))
        assert entries == []
        assert skipped == 0

    def test_corrupt_and_foreign_lines_are_skipped(self, tmp_path):
        directory = tmp_path / "history"
        directory.mkdir()
        good = history_entry(wallclock_document(), sha="ok",
                             timestamp=0.0)
        lines = [
            json.dumps(good),
            "{truncated by a crash",
            json.dumps({"schema": "someone-else/9"}),
            "",
            json.dumps(good),
        ]
        (directory / HISTORY_FILENAME).write_text("\n".join(lines) + "\n")
        entries, skipped = load_history(str(directory))
        assert len(entries) == 2
        assert skipped == 2


class TestHostIdentity:
    def test_fingerprint_fields(self):
        host = host_fingerprint()
        assert set(host) >= {"python", "numpy", "platform", "machine",
                             "cpu_count"}
        assert host["cpu_count"] >= 1

    def test_git_sha_in_checkout_and_outside(self, tmp_path):
        import pathlib

        repo = str(pathlib.Path(__file__).resolve().parents[2])
        sha = git_sha(cwd=repo)
        assert len(sha) == 40
        assert git_sha(cwd=str(tmp_path)) == "unknown"
