"""Tests for ``python -m repro.obs report``."""

import contextlib
import io

import pytest

from repro.obs.__main__ import main
from repro.obs.metrics import experiment_entry, write_metrics
from repro.obs.report import render_report
from tests.obs.test_metrics import fake_snapshot


def sample_document():
    from repro.obs.metrics import metrics_document

    return metrics_document([experiment_entry("F13", 2.0, fake_snapshot())])


class TestRenderReport:
    def test_sections_present(self):
        text = render_report(sample_document())
        assert "experiments" in text
        assert "top compiler passes by wall time" in text
        assert "top units by busy cycles" in text
        assert "issue-stall breakdown by policy" in text

    def test_ranks_passes_and_units(self):
        text = render_report(sample_document())
        assert "cse" in text
        assert "qr" in text
        assert "structural=7" in text

    def test_empty_document(self):
        from repro.obs.metrics import metrics_document

        text = render_report(metrics_document([]))
        assert "(none)" in text
        assert "(no simulations recorded)" in text


class TestCli:
    def test_report_prints_summary(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics(path, [experiment_entry("F13", 2.0, fake_snapshot())])
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main(["report", str(path)])
        assert code == 0
        assert "top units by busy cycles" in buffer.getvalue()

    def test_report_json_artifact(self, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        write_metrics(path, [experiment_entry("F13", 2.0, fake_snapshot())])
        out = tmp_path / "report.json"
        with contextlib.redirect_stdout(io.StringIO()):
            code = main(["report", str(path), "--json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.obs.report/1"
        assert [r["experiment"] for r in payload["rows"]] == ["F13"]
        assert "pass_time" in payload and "stalls" in payload

    def test_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["report", str(tmp_path / "nope.json")])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
