"""The disabled fleet registry must be (nearly) free on producer paths.

``CompiledSolver.solve`` and the supervisor consult
:func:`repro.obs.fleet.active` once per solve; with the registry off
that is a single module-global read, mirroring the
``wallclock``/``vtrace`` hook contract pinned by
``tests/compiler/test_executor_overhead.py``.
"""

import time

from repro.obs import fleet


def best_of(fn, repeats=5):
    """Minimum wall time over repeats: robust to scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def producer_hot_loop(n=50_000):
    """The guarded producer pattern every instrumented solve uses."""
    for _ in range(n):
        registry = fleet.active()
        if registry is not None:  # pragma: no cover - disabled in test
            registry.incr("fleet.solve.total", executor="x")


class TestDisabledFleetOverhead:
    def test_disabled_producer_guard_is_cheap(self):
        # 50k disabled guard checks; a module-global read runs at tens
        # of nanoseconds, so even a slow CI box stays far under this.
        assert fleet.active() is None
        producer_hot_loop(1000)  # warm
        elapsed = best_of(lambda: producer_hot_loop())
        assert elapsed < 0.25, (
            f"disabled fleet guard too slow: {elapsed:.4f}s / 50k checks")

    def test_guard_stays_within_factor_of_plain_loop(self):
        # Mirrors the executor-overhead bound: the guarded loop must be
        # within a small factor of the same loop without the check.
        def plain(n=50_000):
            for _ in range(n):
                pass

        assert fleet.active() is None
        plain()
        producer_hot_loop(1000)
        baseline = best_of(plain)
        hooked = best_of(lambda: producer_hot_loop())
        assert hooked < baseline * 5.0 + 1e-2, (
            f"disabled fleet guard {hooked:.4f}s vs empty loop "
            f"{baseline:.4f}s")

    def test_enabled_work_does_not_leak_after_disable(self):
        with fleet.fleet_scope() as registry:
            registry.incr("fleet.solve.total")
        assert fleet.active() is None
        # Re-enabling yields a fresh registry, not the old series.
        with fleet.fleet_scope() as fresh:
            assert fresh.snapshot()["series"] == []
