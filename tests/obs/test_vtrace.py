"""Tests for the per-instruction value-trace recorder."""

import json

import numpy as np
import pytest

from repro.compiler.executor import Executor
from repro.compiler.isa import Opcode, Program
from repro.obs import vtrace


def small_program(n=10, value=1.5):
    """A CONST followed by a COPY chain: every instruction has a dst."""
    program = Program()
    reg = program.new_register("r", (2,))
    program.emit(Opcode.CONST, [], [reg],
                 meta={"value": np.full(2, value)})
    for _ in range(n - 1):
        nxt = program.new_register("r", (2,))
        program.emit(Opcode.COPY, [reg], [nxt])
        reg = nxt
    return program


def trace_lines(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh]


def run_traced(program, path, **kwargs):
    with vtrace.recording_scope(path, **kwargs):
        return Executor().run(program)


class TestDeterminism:
    def test_identical_runs_are_byte_identical(self, tmp_path):
        """The determinism gate: same program, same bytes."""
        program = small_program()
        a, b = tmp_path / "a.trace", tmp_path / "b.trace"
        run_traced(program, a)
        run_traced(program, b)
        assert a.read_bytes() == b.read_bytes()

    def test_value_change_changes_digests(self, tmp_path):
        a, b = tmp_path / "a.trace", tmp_path / "b.trace"
        run_traced(small_program(value=1.5), a)
        run_traced(small_program(value=1.5 + 1e-12), b)
        assert a.read_bytes() != b.read_bytes()

    def test_no_environment_leaks(self, tmp_path):
        # Traces must stay byte-identical across hosts and reruns: no
        # timestamps, hostnames, or absolute paths in any record.
        path = tmp_path / "a.trace"
        run_traced(small_program(), path)
        text = path.read_text()
        assert str(tmp_path) not in text
        assert "time" not in text


class TestDigest:
    def test_digest_separates_shape_and_dtype(self):
        data = np.zeros(6)
        assert vtrace.digest_value(data.reshape(2, 3)) != \
            vtrace.digest_value(data.reshape(3, 2))
        assert vtrace.digest_value(data) != \
            vtrace.digest_value(data.astype(np.float32))

    def test_digest_is_layout_independent(self):
        arr = np.arange(6.0).reshape(2, 3)
        assert vtrace.digest_value(arr) == \
            vtrace.digest_value(np.asfortranarray(arr))

    def test_fingerprint_separates_structure_not_values(self):
        assert vtrace.program_fingerprint(small_program(value=1.0)) == \
            vtrace.program_fingerprint(small_program(value=2.0))
        assert vtrace.program_fingerprint(small_program(n=10)) != \
            vtrace.program_fingerprint(small_program(n=11))

    def test_encode_decode_round_trip(self):
        arr = np.arange(6.0).reshape(3, 2)
        decoded = vtrace.decode_value(vtrace.encode_value(arr))
        assert decoded.dtype == arr.dtype
        assert np.array_equal(decoded, arr)


class TestTraceFile:
    def test_stream_layout(self, tmp_path):
        program = small_program(n=5)
        path = tmp_path / "a.trace"
        run_traced(program, path)
        lines = trace_lines(path)
        assert lines[0]["kind"] == "trace"
        assert lines[0]["schema"] == vtrace.VTRACE_SCHEMA
        assert lines[1]["kind"] == "program"
        assert lines[1]["fingerprint"] == \
            vtrace.program_fingerprint(program)
        assert lines[1]["instructions"] == 5
        instrs = [l for l in lines if l["kind"] == "instr"]
        assert [r["seq"] for r in instrs] == list(range(5))
        assert all(r["digests"] for r in instrs)
        assert lines[-1] == {"kind": "end", "index": 0, "records": 5,
                             "ring": lines[-1]["ring"]}

    def test_chunked_flush_keeps_every_record(self, tmp_path):
        path = tmp_path / "a.trace"
        run_traced(small_program(n=40), path, chunk_size=7)
        instrs = [l for l in trace_lines(path) if l["kind"] == "instr"]
        assert len(instrs) == 40

    def test_multiple_programs_share_one_trace(self, tmp_path):
        path = tmp_path / "a.trace"
        with vtrace.recording_scope(path, ring_size=0):
            Executor().run(small_program(n=3))
            Executor().run(small_program(n=4))
        lines = trace_lines(path)
        assert [l["index"] for l in lines if l["kind"] == "program"] == \
            [0, 1]
        assert [l["records"] for l in lines if l["kind"] == "end"] == \
            [3, 4]
        # seq is monotonic across program boundaries.
        seqs = [l["seq"] for l in lines if l["kind"] == "instr"]
        assert seqs == list(range(7))


class TestRingBuffer:
    def test_ring_keeps_last_k_full_values(self, tmp_path):
        path = tmp_path / "a.trace"
        registers = run_traced(small_program(n=10), path, ring_size=3)
        footer = trace_lines(path)[-1]
        assert [e["seq"] for e in footer["ring"]] == [7, 8, 9]
        for entry in footer["ring"]:
            for name, encoded in entry["values"].items():
                assert np.array_equal(vtrace.decode_value(encoded),
                                      registers[name])

    def test_ring_disabled(self, tmp_path):
        path = tmp_path / "a.trace"
        run_traced(small_program(), path, ring_size=0)
        assert "ring" not in trace_lines(path)[-1]

    def test_capture_range_inlines_values(self, tmp_path):
        path = tmp_path / "a.trace"
        registers = run_traced(small_program(n=10), path,
                               capture_range=(2, 5))
        instrs = [l for l in trace_lines(path) if l["kind"] == "instr"]
        captured = [r["seq"] for r in instrs if "values" in r]
        assert captured == [2, 3, 4]
        record = instrs[2]
        name = record["dsts"][0]
        assert np.array_equal(
            vtrace.decode_value(record["values"][name]), registers[name])


class TestActivation:
    def test_disabled_by_default(self):
        assert vtrace.active() is None

    def test_scope_installs_and_restores(self, tmp_path):
        with vtrace.recording_scope(tmp_path / "a.trace") as recorder:
            assert vtrace.active() is recorder
            with vtrace.recording_scope(tmp_path / "b.trace") as inner:
                assert vtrace.active() is inner
            assert vtrace.active() is recorder
        assert vtrace.active() is None

    def test_traced_run_matches_untraced(self, tmp_path):
        program = small_program(n=8)
        plain = Executor().run(program)
        traced = run_traced(program, tmp_path / "a.trace")
        assert set(plain) == set(traced)
        for name in plain:
            assert np.array_equal(plain[name], traced[name])

    def test_crashing_run_still_writes_footer(self, tmp_path):
        program = small_program(n=3)
        # An unwritten source register makes execution fail mid-program.
        program.instructions[1].srcs[0] = "never_written"
        path = tmp_path / "a.trace"
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError):
            run_traced(program, path)
        lines = trace_lines(path)
        assert lines[-1]["kind"] == "end"
        assert lines[-1]["records"] == 1
