"""Keep the process-global obs collector clean around every test."""

import pytest

from repro.obs import core, fleet


@pytest.fixture(autouse=True)
def clean_obs():
    core.disable()
    core.collector().drain()
    fleet.disable()
    yield
    core.disable()
    core.collector().drain()
    fleet.disable()
