"""Keep the process-global obs collector clean around every test."""

import pytest

from repro.obs import core


@pytest.fixture(autouse=True)
def clean_obs():
    core.disable()
    core.collector().drain()
    yield
    core.disable()
    core.collector().drain()
