"""Tests for the Chrome ``trace_event`` exporter."""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.trace_export import (
    assign_unit_instances,
    chrome_trace,
    host_span_events,
    sim_trace_events,
    write_chrome_trace,
)
from repro.compiler import compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.sim import Simulator


def pose_chain(n=5, seed=0):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values)


@pytest.fixture
def snapshot():
    compiled = pose_chain()
    with obs.enabled_scope():
        with obs.trace.span("experiment.test", category="eval"):
            Simulator().run(compiled.program, "ooo")
        return obs.collector().drain()


class TestAssignUnitInstances:
    def test_serial_intervals_share_one_instance(self):
        intervals = [(0.0, 2.0, 0), (2.0, 4.0, 1), (4.0, 5.0, 2)]
        assignment = assign_unit_instances(intervals, 2)
        assert set(assignment.values()) == {0}

    def test_overlapping_intervals_spread_across_instances(self):
        intervals = [(0.0, 4.0, 0), (1.0, 5.0, 1), (2.0, 3.0, 2)]
        assignment = assign_unit_instances(intervals, 3)
        assert len(set(assignment.values())) == 3
        assert max(assignment.values()) <= 2

    def test_oversubscription_spills_instead_of_failing(self):
        intervals = [(0.0, 4.0, 0), (0.0, 4.0, 1)]
        assignment = assign_unit_instances(intervals, 1)
        assert sorted(assignment.values()) == [0, 1]  # spill track


class TestChromeTrace:
    def test_events_are_valid_trace_event_objects(self, snapshot):
        document = chrome_trace(snapshot)
        events = document["traceEvents"]
        assert events
        for event in events:
            assert {"ph", "pid", "name"} <= set(event)
            if event["ph"] == "X":
                assert event["ts"] >= 0.0
                assert event["dur"] >= 0.0
                assert isinstance(event["tid"], int)

    def test_one_track_per_unit_instance(self, snapshot):
        record = snapshot.sims[0]
        events = sim_trace_events(record, pid=100)
        names = [e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        # Track labels are unit[k] with k below the configured count,
        # plus the single async "waits" track.
        counts = record["unit_instance_counts"]
        unit_names = [n for n in names if n != "waits"]
        assert unit_names
        for label in unit_names:
            unit, idx = label[:-1].split("[")
            assert int(idx) < counts[unit]
        assert len(names) == len(set(names))

    def test_instruction_events_carry_phase_and_cycles(self, snapshot):
        events = sim_trace_events(snapshot.sims[0], pid=100)
        slices = [e for e in events if e["ph"] == "X"]
        issued = snapshot.sims[0]["issued_count"]
        assert len(slices) == issued
        for event in slices:
            assert event["cat"].startswith("sim.")
            assert event["args"]["cycles"] >= 0

    def test_host_spans_become_host_tracks(self, snapshot):
        events = host_span_events(snapshot)
        process = [e for e in events if e["ph"] == "M"
                   and e["name"] == "process_name"]
        assert process and process[0]["args"]["name"] == "host"
        slices = [e for e in events if e["ph"] == "X"]
        assert any(e["name"] == "experiment.test" for e in slices)

    def test_write_round_trips_through_json(self, snapshot, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, snapshot)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
        assert loaded["otherData"]["generator"] == "repro.obs"

    def test_empty_snapshot_still_valid(self):
        document = chrome_trace(obs.Snapshot())
        assert document["traceEvents"] == []
        json.dumps(document)

    def test_instruction_events_carry_provenance_args(self, snapshot):
        events = sim_trace_events(snapshot.sims[0], pid=100)
        slices = [e for e in events if e["ph"] == "X"]
        tagged = [e for e in slices if "prov.stage" in e["args"]]
        assert tagged, "expected provenance args on sim slices"
        stages = {e["args"]["prov.stage"] for e in tagged}
        assert "eliminate" in stages
        assert any("prov.factors" in e["args"] for e in tagged)

    def test_wait_track_pairs_async_events_with_cause_args(self, snapshot):
        record = snapshot.sims[0]
        events = sim_trace_events(record, pid=100)
        begins = [e for e in events
                  if e.get("cat") == "sim.wait" and e["ph"] == "b"]
        ends = [e for e in events
                if e.get("cat") == "sim.wait" and e["ph"] == "e"]
        assert begins, "expected wait slices on a contended schedule"
        assert {e["id"] for e in begins} == {e["id"] for e in ends}
        waits = record["waits"]
        for event in begins:
            assert event["args"]["uid"] == event["id"]
            info = waits[str(event["id"])]
            assert event["args"]["wait_cycles"] == pytest.approx(
                info["wait"])
            cause_total = sum(v for k, v in event["args"].items()
                              if k.startswith("cause."))
            assert cause_total == pytest.approx(info["wait"], abs=1e-2)

    def test_wait_slices_only_for_positive_waits(self, snapshot):
        record = snapshot.sims[0]
        events = sim_trace_events(record, pid=100)
        begins = {e["id"] for e in events
                  if e.get("cat") == "sim.wait" and e["ph"] == "b"}
        for uid, info in record["waits"].items():
            expected = info["wait"] > 0
            assert (int(uid) in begins) == expected


class TestSchedulelessRecords:
    """A record without a schedule must yield a valid, empty trace."""

    def _record(self, **overrides):
        record = {
            "label": "bare", "policy": "ooo", "clock_mhz": 200.0,
            "unit_instance_counts": {"qr": 1},
        }
        record.update(overrides)
        return record

    def test_missing_schedule_key(self):
        events = sim_trace_events(self._record(), pid=100)
        assert all(e["ph"] == "M" for e in events)
        json.dumps(events)

    def test_empty_schedule(self):
        events = sim_trace_events(
            self._record(schedule={}, instructions={}), pid=100)
        assert all(e["ph"] == "M" for e in events)

    def test_schedule_none(self):
        events = sim_trace_events(
            self._record(schedule=None, instructions=None), pid=100)
        assert all(e["ph"] == "M" for e in events)

    def test_snapshot_without_schedules_round_trips(self, tmp_path):
        snapshot = obs.Snapshot(sims=[self._record()])
        path = tmp_path / "trace.json"
        write_chrome_trace(path, snapshot)
        loaded = json.loads(path.read_text())
        assert all(e["ph"] == "M" for e in loaded["traceEvents"])

    def test_unscheduled_run_exports_cleanly(self, tmp_path):
        """record_schedule=False + no obs: telemetry-free result still
        exports (the collector simply has no sim records)."""
        compiled = pose_chain()
        result = Simulator().run(compiled.program, "ooo",
                                 record_schedule=False)
        assert result.schedule == {}
        document = chrome_trace(obs.Snapshot())
        json.dumps(document)
