"""Fleet telemetry: sketches, the labeled registry, and exporters."""

import json
import threading

import numpy as np
import pytest

from repro.obs import fleet
from repro.obs.fleet import (
    FleetRegistry,
    QuantileSketch,
    exact_view,
    label_scope,
    parse_prometheus_text,
    series_jsonl_lines,
    to_prometheus,
    write_series_jsonl,
)


class TestQuantileSketch:
    def test_quantiles_within_one_bucket_of_exact(self):
        # The DDSketch guarantee: every reported quantile is within
        # relative alpha of the true order statistic.  Log-uniform
        # values stress many buckets.
        rng = np.random.default_rng(7)
        values = np.exp(rng.uniform(np.log(1e-4), np.log(10.0), 5000))
        sketch = QuantileSketch(alpha=0.01)
        for v in values:
            sketch.record(float(v))
        for q in (0.50, 0.95, 0.99):
            exact = float(np.quantile(values, q, method="lower"))
            got = sketch.quantile(q)
            assert abs(got - exact) <= 0.0101 * exact + 1e-12, (
                f"q={q}: sketch {got} vs exact {exact}")

    def test_extremes_are_exact(self):
        sketch = QuantileSketch()
        for v in (0.5, 3.0, 0.125):
            sketch.record(v)
        assert sketch.quantile(1.0) == 3.0
        assert sketch.min == 0.125
        assert sketch.count == 3
        assert sketch.sum == pytest.approx(3.625)

    def test_zero_and_subtrackable_values(self):
        sketch = QuantileSketch()
        sketch.record(0.0)
        sketch.record(1e-12)
        sketch.record(1.0)
        assert sketch.zero_count == 2
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(1.0) == 1.0

    def test_rejects_bad_values(self):
        sketch = QuantileSketch()
        with pytest.raises(ValueError):
            sketch.record(float("nan"))
        with pytest.raises(ValueError):
            sketch.record(float("inf"))
        with pytest.raises(ValueError):
            sketch.record(-1.0)
        with pytest.raises(ValueError):
            QuantileSketch(alpha=1.5)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)

    def test_empty_sketch_has_no_quantiles(self):
        assert QuantileSketch().quantile(0.5) is None

    def test_merge_equals_recording_everything(self):
        rng = np.random.default_rng(3)
        a_vals = rng.uniform(0.001, 5.0, 300)
        b_vals = rng.uniform(0.01, 50.0, 200)
        a, b, both = QuantileSketch(), QuantileSketch(), QuantileSketch()
        for v in a_vals:
            a.record(v)
            both.record(v)
        for v in b_vals:
            b.record(v)
            both.record(v)
        a.merge(b)
        merged, direct = a.to_dict(), both.to_dict()
        # The float sum differs only in addition order.
        assert merged.pop("sum") == pytest.approx(direct.pop("sum"))
        assert merged == direct

    def test_merge_rejects_mismatched_alpha(self):
        with pytest.raises(ValueError):
            QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))

    def test_serialization_is_order_independent_and_byte_stable(self):
        # Same value multiset in different orders must serialize to the
        # same bytes — the property the CI byte-determinism gates lean
        # on.
        values = [0.004, 2.5, 0.3, 2.5, 17.0, 0.0003]
        fwd, rev = QuantileSketch(), QuantileSketch()
        for v in values:
            fwd.record(v)
        for v in reversed(values):
            rev.record(v)
        assert json.dumps(fwd.to_dict(), sort_keys=True) == \
            json.dumps(rev.to_dict(), sort_keys=True)

    def test_round_trips_through_dict(self):
        sketch = QuantileSketch()
        for v in (0.1, 0.2, 3.0):
            sketch.record(v)
        clone = QuantileSketch.from_dict(
            json.loads(json.dumps(sketch.to_dict())))
        assert clone.to_dict() == sketch.to_dict()
        assert clone.quantile(0.5) == sketch.quantile(0.5)


class TestFleetRegistry:
    def test_counters_accumulate_per_label_set(self):
        reg = FleetRegistry()
        reg.incr("fleet.solve.total", app="A")
        reg.incr("fleet.solve.total", app="A")
        reg.incr("fleet.solve.total", app="B")
        snap = reg.snapshot()
        values = {tuple(sorted(e["labels"].items())): e["value"]
                  for e in snap["series"]}
        assert values[(("app", "A"),)] == 2.0
        assert values[(("app", "B"),)] == 1.0

    def test_ambient_label_scope_applies_and_nests(self):
        reg = FleetRegistry()
        with label_scope(session="s", app="outer"):
            with label_scope(app="inner"):
                reg.incr("fleet.solve.total")
            reg.incr("fleet.solve.total", executor="x")
        labels = [e["labels"] for e in reg.snapshot()["series"]]
        assert {"app": "inner", "session": "s"} in labels
        assert {"app": "outer", "session": "s", "executor": "x"} in labels

    def test_explicit_labels_beat_ambient(self):
        reg = FleetRegistry()
        with label_scope(app="ambient"):
            reg.incr("fleet.solve.total", app="explicit")
        (entry,) = reg.snapshot()["series"]
        assert entry["labels"] == {"app": "explicit"}

    def test_kind_conflict_raises(self):
        reg = FleetRegistry()
        reg.incr("m")
        with pytest.raises(ValueError):
            reg.observe("m", 1.0)
        with pytest.raises(ValueError):
            reg.incr("m", unit="seconds")

    def test_gauge_overwrites(self):
        reg = FleetRegistry()
        reg.gauge("depth", 3)
        reg.gauge("depth", 5)
        (entry,) = reg.snapshot()["series"]
        assert entry["kind"] == "gauge"
        assert entry["value"] == 5.0

    def test_windows_roll_up_and_reset(self):
        reg = FleetRegistry()
        reg.incr("n")
        reg.advance_window("w0")
        reg.incr("n")
        reg.incr("n")
        reg.advance_window("w1")
        reg.advance_window("empty-is-dropped")
        snap = reg.snapshot()
        assert [w["key"] for w in snap["windows"]] == ["w0", "w1"]
        assert snap["windows"][0]["series"][0]["value"] == 1.0
        assert snap["windows"][1]["series"][0]["value"] == 2.0
        # The cumulative series is unaffected by window boundaries.
        assert snap["series"][0]["value"] == 3.0

    def test_merge_sections_adds_counters_and_merges_sketches(self):
        a, b = FleetRegistry(), FleetRegistry()
        a.incr("n", app="X")
        a.observe("lat", 0.5, app="X")
        b.incr("n", app="X", amount=2.0)
        b.observe("lat", 1.5, app="X")
        b.advance_window("bw")
        a.merge(b.snapshot())
        snap = a.snapshot()
        by_name = {e["name"]: e for e in snap["series"]}
        assert by_name["n"]["value"] == 3.0
        assert by_name["lat"]["sketch"]["count"] == 2
        assert [w["key"] for w in snap["windows"]] == ["bw"]

    def test_merged_registry_equals_single_registry(self):
        # Cross-process aggregation: two half snapshots merged into a
        # fresh registry serialize identically to one registry that saw
        # every event — determinism across process splits.
        one = FleetRegistry()
        left, right = FleetRegistry(), FleetRegistry()
        for i in range(40):
            target = left if i % 2 else right
            target.incr("n", app=f"A{i % 3}")
            target.observe("lat", 0.25 * (i + 1), app=f"A{i % 3}")
            one.incr("n", app=f"A{i % 3}")
            one.observe("lat", 0.25 * (i + 1), app=f"A{i % 3}")
        merged = FleetRegistry()
        merged.merge(left.snapshot())
        merged.merge(right.snapshot())
        assert json.dumps(merged.snapshot(), sort_keys=True) == \
            json.dumps(one.snapshot(), sort_keys=True)

    def test_concurrent_increments_do_not_lose_updates(self):
        reg = FleetRegistry()
        threads = [
            threading.Thread(target=lambda: [
                reg.incr("n", app="X") for _ in range(2000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        (entry,) = reg.snapshot()["series"]
        assert entry["value"] == 8 * 2000

    def test_clear_resets_everything(self):
        reg = FleetRegistry()
        reg.incr("n")
        reg.advance_window("w")
        reg.clear()
        snap = reg.snapshot()
        assert snap["series"] == [] and snap["windows"] == []
        # The name is free to re-register with a different kind now.
        reg.observe("n", 1.0)


class TestActivation:
    def test_off_by_default(self):
        assert fleet.active() is None

    def test_scope_restores_previous_state(self):
        outer = fleet.enable()
        with fleet.fleet_scope() as inner:
            assert fleet.active() is inner
            assert inner is not outer
        assert fleet.active() is outer
        fleet.disable()
        assert fleet.active() is None


class TestExactView:
    def test_drops_only_wallclock_unit_series(self):
        reg = FleetRegistry()
        reg.incr("n", app="X")
        reg.observe("wall", 0.1, unit=fleet.UNIT_SECONDS, app="X")
        reg.observe("sim", 0.1, unit=fleet.UNIT_SIM_SECONDS, app="X")
        reg.advance_window("w")
        view = exact_view(reg.snapshot())
        names = {e["name"] for e in view["series"]}
        assert names == {"n", "sim"}
        window_names = {e["name"]
                        for w in view["windows"] for e in w["series"]}
        assert "wall" not in window_names

    def test_windows_left_with_no_series_are_dropped(self):
        reg = FleetRegistry()
        reg.observe("wall", 0.1, unit=fleet.UNIT_SECONDS)
        reg.advance_window("only-wallclock")
        assert exact_view(reg.snapshot())["windows"] == []


def populated_registry():
    reg = FleetRegistry()
    with label_scope(session="t"):
        for app in ("A", "B"):
            reg.incr("fleet.solve.total", app=app, executor="fused")
            reg.observe("fleet.solve.latency_s", 0.002, app=app,
                        executor="fused")
        reg.gauge("fleet.ladder.depth", 3)
        reg.advance_window("w0")
    return reg


class TestPrometheusExport:
    def test_exposition_parses_and_is_well_formed(self):
        text = to_prometheus(populated_registry().snapshot())
        families = parse_prometheus_text(text)
        # The counter family keeps one _total suffix (the metric name
        # already ends in .total; no double suffixing).
        assert "repro_fleet_solve_total" in families
        assert families["repro_fleet_solve_total"]["type"] == "counter"
        hist = families["repro_fleet_solve_latency_s"]
        assert hist["type"] == "histogram"
        suffixes = {name.rsplit("_", 1)[-1]
                    for name, _, _ in hist["samples"]}
        assert {"bucket", "sum", "count"} <= suffixes

    def test_histogram_buckets_are_cumulative_to_count(self):
        text = to_prometheus(populated_registry().snapshot())
        families = parse_prometheus_text(text)
        samples = families["repro_fleet_solve_latency_s"]["samples"]
        for labels in {lb for name, lb, _ in samples
                       if name.endswith("_count")}:
            count = next(v for n, lb, v in samples
                         if n.endswith("_count") and lb == labels)
            inf_bucket = next(
                v for n, lb, v in samples if n.endswith("_bucket")
                and lb.startswith(labels.rsplit(",", 1)[0])
                and 'le="+Inf"' in lb)
            assert inf_bucket == count

    def test_parser_rejects_duplicate_type(self):
        with pytest.raises(ValueError, match="duplicate # TYPE"):
            parse_prometheus_text(
                "# TYPE a counter\n# TYPE a counter\na 1\n")

    def test_parser_rejects_duplicate_series(self):
        with pytest.raises(ValueError, match="duplicate series"):
            parse_prometheus_text(
                '# TYPE a counter\na{x="1"} 1\na{x="1"} 2\n')

    def test_parser_rejects_orphan_sample(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_prometheus_text("orphan 1\n")

    def test_parser_rejects_bad_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            parse_prometheus_text("# TYPE a counter\na one\n")

    def test_empty_section_renders_empty(self):
        assert to_prometheus({"series": []}) == ""


class TestJsonlExport:
    def test_lines_cover_windows_then_cumulative(self, tmp_path):
        section = populated_registry().snapshot()
        path = tmp_path / "fleet.jsonl"
        count = write_series_jsonl(path, section)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == count
        windows = [ln for ln in lines if ln["window"] != "cumulative"]
        cumulative = [ln for ln in lines if ln["window"] == "cumulative"]
        assert windows and cumulative
        assert all(ln["window"] == "w0" and ln["index"] == 0
                   for ln in windows)
        assert len(cumulative) == len(section["series"])

    def test_lines_are_deterministic(self):
        a = list(series_jsonl_lines(populated_registry().snapshot()))
        b = list(series_jsonl_lines(populated_registry().snapshot()))
        assert a == b
