"""Tests for the host wall-clock profiler (:mod:`repro.obs.wallclock`)."""

import numpy as np
import pytest

from repro.compiler.executor import Executor
from repro.compiler.isa import Instruction, Opcode, Program
from repro.obs import wallclock
from repro.obs.wallclock import (
    WALLCLOCK_SCHEMA,
    WallclockProfiler,
    merge_snapshots,
)


@pytest.fixture(autouse=True)
def clean_wallclock():
    wallclock.disable()
    yield
    wallclock.disable()


def tiny_program():
    """const -> copy -> add: three opcodes, deterministic sizes."""
    program = Program()
    a = program.new_register("a", (2, 2))
    program.emit(Opcode.CONST, [], [a], meta={"value": np.ones((2, 2))})
    b = program.new_register("b", (2, 2))
    program.emit(Opcode.COPY, [a], [b])
    c = program.new_register("c", (2, 2))
    program.emit(Opcode.ADD, [a, b], [c])
    return program


class TestProfilerTable:
    def test_snapshot_shape(self):
        profiler = WallclockProfiler()
        ex = Executor()
        const = tiny_program().instructions[0]
        ex.execute(const)
        profiler.record_instruction(const, 1500, ex.registers)
        snap = profiler.snapshot()
        assert snap["schema"] == WALLCLOCK_SCHEMA
        assert snap["instructions"] == 1
        assert snap["total_self_ns"] == 1500
        cell = snap["by_opcode"]["const"]
        assert cell == {"calls": 1, "self_ns": 1500, "elements": 4}
        # Unstamped provenance buckets under "?".
        assert snap["by_opcode_stage"]["const"]["?"]["calls"] == 1

    def test_cells_accumulate_per_opcode_and_stage(self):
        profiler = WallclockProfiler()
        registers = {"x": np.zeros(3)}
        instr = Instruction(uid=0, op=Opcode.COPY, srcs=["x"], dsts=["x"])
        for _ in range(4):
            profiler.record_instruction(instr, 100, registers)
        snap = profiler.snapshot()
        assert snap["by_opcode"]["copy"] == \
            {"calls": 4, "self_ns": 400, "elements": 12}

    def test_drain_resets(self):
        profiler = WallclockProfiler()
        profiler.record_instruction(
            Instruction(uid=0, op=Opcode.COPY, srcs=[], dsts=[]),
            50, {})
        profiler.record_program()
        first = profiler.drain()
        assert first["instructions"] == 1
        assert first["programs"] == 1
        empty = profiler.snapshot()
        assert empty["instructions"] == 0
        assert empty["programs"] == 0
        assert empty["by_opcode"] == {}


class TestExecutorIntegration:
    def test_disabled_by_default(self):
        assert wallclock.active() is None
        Executor().run(tiny_program())   # no profiler involved

    def test_enabled_run_records_every_instruction(self):
        profiler = wallclock.enable()
        Executor().run(tiny_program())
        snap = profiler.drain()
        assert snap["programs"] == 1
        assert snap["instructions"] == 3
        assert set(snap["by_opcode"]) == {"const", "copy", "add"}
        assert snap["total_self_ns"] > 0
        # Destination element counts: every register here is produced
        # once; const/copy/add all write 2x2 = 4 elements.
        for cell in snap["by_opcode"].values():
            assert cell["elements"] == 4

    def test_profiled_and_plain_runs_produce_identical_registers(self):
        program = tiny_program()
        plain = Executor().run(program)
        with wallclock.profiled_scope():
            profiled = Executor().run(program)
        assert set(plain) == set(profiled)
        for name in plain:
            np.testing.assert_array_equal(plain[name], profiled[name])

    def test_profiled_scope_restores_previous(self):
        outer = wallclock.enable()
        with wallclock.profiled_scope() as inner:
            assert wallclock.active() is inner
            assert inner is not outer
        assert wallclock.active() is outer

    def test_snapshot_is_json_serializable(self):
        import json

        with wallclock.profiled_scope() as profiler:
            Executor().run(tiny_program())
        json.dumps(profiler.drain())


class TestMergeSnapshots:
    def test_merges_counts_and_skips_empty(self):
        with wallclock.profiled_scope() as profiler:
            Executor().run(tiny_program())
            one = profiler.drain()
            Executor().run(tiny_program())
            two = profiler.drain()
        merged = merge_snapshots([one, None, two, {}])
        assert merged["programs"] == 2
        assert merged["instructions"] == 6
        assert merged["by_opcode"]["const"]["calls"] == 2
        assert merged["by_opcode_stage"]["const"]["?"]["calls"] == 2
