"""Tests for the span/counter API and the process-global collector."""

import threading

from repro import obs
from repro.obs import core, counters, trace


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()
        assert not obs.debug_enabled()

    def test_enable_disable(self):
        obs.enable()
        assert obs.is_enabled()
        assert not obs.debug_enabled()
        obs.disable()
        assert not obs.is_enabled()

    def test_debug_requires_enabled(self):
        obs.enable(debug=True)
        assert obs.debug_enabled()
        obs.disable()
        assert not obs.debug_enabled()

    def test_enabled_scope_restores_prior_state(self):
        assert not obs.is_enabled()
        with obs.enabled_scope():
            assert obs.is_enabled()
        assert not obs.is_enabled()

        obs.enable()
        with obs.enabled_scope(debug=True):
            assert obs.debug_enabled()
        assert obs.is_enabled() and not obs.debug_enabled()


class TestSpans:
    def test_disabled_span_is_shared_noop(self):
        a = trace.span("x")
        b = trace.span("y", category="anything", arg=1)
        assert a is b  # the singleton: no allocation on the fast path
        with a as sp:
            sp.set(ignored=True)
        assert obs.collector().spans == []

    def test_enabled_span_records(self):
        obs.enable()
        with trace.span("work", category="test", tag="t") as sp:
            sp.set(result=42)
        snap = obs.collector().drain()
        assert len(snap.spans) == 1
        span = snap.spans[0]
        assert span.name == "work"
        assert span.category == "test"
        assert span.args == {"tag": "t", "result": 42}
        assert span.duration_s >= 0.0
        assert span.thread == threading.get_ident()

    def test_span_survives_exception(self):
        obs.enable()
        try:
            with trace.span("boom"):
                raise ValueError("inner")
        except ValueError:
            pass
        snap = obs.collector().drain()
        assert [s.name for s in snap.spans] == ["boom"]

    def test_span_totals_by_category(self):
        obs.enable()
        with trace.span("a", category="c1"):
            pass
        with trace.span("a", category="c1"):
            pass
        with trace.span("b", category="c2"):
            pass
        snap = obs.collector().drain()
        assert set(snap.span_totals()) == {"a", "b"}
        assert set(snap.span_totals(category="c1")) == {"a"}


class TestCounters:
    def test_disabled_incr_is_noop(self):
        counters.incr("k")
        assert obs.collector().counters == {}

    def test_incr_accumulates(self):
        obs.enable()
        counters.incr("k")
        counters.incr("k", 2.5)
        counters.merge("pre", {"x": 2, "y": 3})
        snap = obs.collector().drain()
        assert snap.counters == {"k": 3.5, "pre.x": 2.0, "pre.y": 3.0}

    def test_concurrent_increments_and_spans_are_not_lost(self):
        # The collector guards its dicts with one lock; a dropped update
        # here would mean unlocked read-modify-write snuck back in.
        obs.enable()

        def worker():
            for _ in range(2000):
                counters.incr("hot")
                with trace.span("hot", category="t"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = obs.collector().drain()
        assert snap.counters == {"hot": 8 * 2000.0}
        assert len(snap.spans) == 8 * 2000


class TestDrain:
    def test_drain_clears_everything(self):
        obs.enable()
        counters.incr("k")
        with trace.span("s"):
            pass
        obs.collector().record_sim({"policy": "ooo"})
        snap = obs.collector().drain()
        assert snap.counters and snap.spans and snap.sims
        empty = obs.collector().drain()
        assert not empty.counters and not empty.spans and not empty.sims

    def test_collector_is_process_global(self):
        assert core.collector() is obs.collector()
