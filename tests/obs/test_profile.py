"""Tests for the provenance profile renderer and CLI."""

import numpy as np
import pytest

from repro import obs
from repro.obs.__main__ import main as obs_main
from repro.obs.metrics import experiment_entry, metrics_document, \
    write_metrics
from repro.obs.profile import aggregate_attribution, aggregate_health, \
    render_profile
from repro.compiler import compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.sim import Simulator


def pose_chain(n=5, seed=0):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values)


@pytest.fixture(scope="module")
def document():
    compiled = pose_chain()
    with obs.enabled_scope():
        Simulator().run(compiled.optimized().program, "ooo")
        snapshot = obs.collector().drain()
    return metrics_document([experiment_entry("TEST", 0.1, snapshot)])


class TestAggregation:
    def test_coverage_meets_the_bar(self, document):
        """Acceptance criterion: >= 95% of busy cycles attributed."""
        agg = aggregate_attribution(document)
        assert agg["with_attribution"] == agg["simulations"] == 1
        assert agg["coverage"] >= 0.95

    def test_tables_are_populated(self, document):
        agg = aggregate_attribution(document)
        assert {"PriorFactor", "BetweenFactor"} <= \
            set(agg["by_factor_type"])
        assert "eliminate" in agg["by_stage"]
        assert agg["critical_path"]
        assert sum(agg["slack_histogram"].values()) > 0

    def test_empty_document(self):
        agg = aggregate_attribution(metrics_document([]))
        assert agg["coverage"] == 1.0
        assert agg["critical_path"] == {}


class TestRenderProfile:
    def test_renders_all_sections(self, document):
        text = render_profile(document, top=5)
        assert "attribution coverage" in text
        assert "top factor types by attributed cycles" in text
        assert "cycles by algorithm stage" in text
        assert "critical path" in text
        assert "slack histogram" in text
        assert "BetweenFactor" in text

    def test_renders_empty_document(self):
        text = render_profile(metrics_document([]))
        assert "no factor attribution recorded" in text
        assert "no slack recorded" in text

    def test_cli_round_trip(self, document, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics(path, document["experiments"])
        assert obs_main(["profile", str(path), "--top", "3"]) == 0

    def test_cli_json_artifact(self, document, tmp_path):
        import json

        path = tmp_path / "metrics.json"
        write_metrics(path, document["experiments"])
        artifact = tmp_path / "profile.json"
        assert obs_main(["profile", str(path),
                         "--json", str(artifact)]) == 0
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "repro.obs.profile/1"
        assert payload["attribution"]["coverage"] >= 0.95
        assert "health" in payload


class TestHealthSection:
    @pytest.fixture(scope="class")
    def health_document(self):
        from repro.factorgraph import prior_on_vector
        from repro.optim import gauss_newton

        graph = FactorGraph([prior_on_vector(X(0), np.array([1.0, 2.0]))])
        values = Values({X(0): np.zeros(2)})
        with obs.enabled_scope():
            gauss_newton(graph, values)
            snapshot = obs.collector().drain()
        return metrics_document([experiment_entry("SOLVE", 0.1, snapshot)])

    def test_aggregate_health_sums_counters(self, health_document):
        health = aggregate_health(health_document)
        assert health["optim.health.gn.iterations"] >= 1
        assert health["optim.health.qr.fronts"] >= 1
        assert all(k.startswith("optim.health.") for k in health)

    def test_render_includes_solver_rows(self, health_document):
        text = render_profile(health_document)
        assert "numeric health probes" in text
        assert "gauss-newton" in text
        assert "qr fronts" in text
        assert "mean residual" in text

    def test_render_without_health_counters(self, document):
        text = render_profile(document)
        assert "no numeric-health counters recorded" in text
