"""The disabled collector must be (nearly) free on instrumented paths.

The acceptance bar is a <2% runtime regression of ``python -m repro.eval``
with observability off.  The instrumented call sites execute a few
thousand times per eval run, so bounding the per-call disabled cost at
the sub-microsecond level keeps the aggregate overhead orders of
magnitude below that bar.  These tests verify both the structural
property (no allocation, shared no-op objects) and a generous absolute
timing bound that holds even on slow CI machines.
"""

import time

from repro import obs
from repro.obs.core import _NULL_SPAN, counters, trace


class TestDisabledFastPath:
    def test_span_returns_shared_singleton(self):
        assert trace.span("anything") is _NULL_SPAN
        assert trace.span("other", category="x", a=1) is _NULL_SPAN

    def test_null_span_context_is_reentrant_noop(self):
        with trace.span("a") as outer:
            with trace.span("b") as inner:
                assert outer is inner
                inner.set(x=1)
        assert obs.collector().spans == []

    def test_disabled_calls_are_fast(self):
        # 200k disabled span+incr pairs; a no-op flag check runs at tens
        # of nanoseconds per call, so even a 10x-slow CI box stays far
        # under this bound (~2.5 us/pair allowed).
        n = 200_000
        started = time.perf_counter()
        for _ in range(n):
            with trace.span("hot"):
                pass
            counters.incr("hot")
        elapsed = time.perf_counter() - started
        assert elapsed < 0.5, f"disabled-path overhead too high: {elapsed}s"

    def test_enabled_work_does_not_leak_into_disabled_state(self):
        with obs.enabled_scope():
            with trace.span("recorded"):
                pass
        counters.incr("after-disable")
        with trace.span("after-disable"):
            pass
        snap = obs.collector().drain()
        assert [s.name for s in snap.spans] == ["recorded"]
        assert snap.counters == {}
