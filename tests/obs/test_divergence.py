"""Tests for first-divergence forensics (:mod:`repro.obs.divergence`)."""

import json

import numpy as np
import pytest

from repro.compiler.executor import Executor
from repro.compiler.isa import Opcode, Program
from repro.obs import vtrace
from repro.obs.__main__ import main as obs_main
from repro.obs.divergence import (
    InjectingExecutor,
    backward_slice,
    error_stats,
    find_divergence,
    load_trace,
    record_app_trace,
    render_divergence,
    rerecord_window,
    ulp_distance,
)

FAULT = {"fault_model": "value", "rate": 0.01, "seed": 3,
         "magnitude": 0.5, "max_faults": 1}


def chain_program(n=8, value=1.5):
    program = Program()
    reg = program.new_register("r", (2,))
    program.emit(Opcode.CONST, [], [reg],
                 meta={"value": np.full(2, value)})
    for _ in range(n - 1):
        nxt = program.new_register("r", (2,))
        program.emit(Opcode.COPY, [reg], [nxt])
        reg = nxt
    return program


def trace_run(program, path, executor=None, **kwargs):
    with vtrace.recording_scope(path, **kwargs):
        (executor or Executor()).run(program)
    return load_trace(path)


class TestErrorStats:
    def test_identical_values(self):
        s = error_stats(np.ones(4), np.ones(4))
        assert s["differing"] == 0
        assert s["max_abs"] == s["max_rel"] == s["max_ulp"] == 0.0

    def test_magnitudes(self):
        s = error_stats(np.array([1.0, 2.0]), np.array([1.0, 2.5]))
        assert s["differing"] == 1
        assert s["max_abs"] == pytest.approx(0.5)
        assert s["max_rel"] == pytest.approx(0.2)
        assert s["max_ulp"] > 0

    def test_shape_mismatch(self):
        s = error_stats(np.ones((2, 3)), np.ones((3, 2)))
        assert s == {"shape_a": [2, 3], "shape_b": [3, 2]}

    def test_nan_equals_nan(self):
        s = error_stats(np.array([np.nan, 1.0]), np.array([np.nan, 1.0]))
        assert s["differing"] == 0
        assert s["max_abs"] == 0.0

    def test_ulp_distance_of_neighbors(self):
        x = np.array([1.0])
        assert ulp_distance(x, np.nextafter(x, 2.0))[0] == 1.0
        # ulp distance crosses zero monotonically.
        assert ulp_distance(np.array([-0.0]), np.array([0.0]))[0] <= 1.0


class TestFindDivergence:
    def test_identical_traces_agree(self, tmp_path):
        program = chain_program()
        a = trace_run(program, tmp_path / "a.trace")
        b = trace_run(program, tmp_path / "b.trace")
        assert find_divergence(a, b) is None

    def test_structure_divergence(self, tmp_path):
        a = trace_run(chain_program(n=3), tmp_path / "a.trace")
        b = trace_run(chain_program(n=4), tmp_path / "b.trace")
        report = find_divergence(a, b)
        assert report["kind"] == "structure"
        assert "not comparable" in render_divergence(report)

    def test_length_divergence(self, tmp_path):
        program = chain_program(n=4)
        a = trace_run(program, tmp_path / "a.trace")
        # Trace B records the same program but stops one record early.
        recorder = vtrace.ValueTraceRecorder(tmp_path / "b.trace")
        recorder.begin_program(program)
        ex = Executor()
        for instr in program.instructions[:-1]:
            ex.execute(instr)
            recorder.record_instruction(instr, ex.registers)
        recorder.end_program()
        recorder.close()
        report = find_divergence(a, load_trace(tmp_path / "b.trace"))
        assert report["kind"] == "length"
        assert report["missing_in"] == "b"
        assert report["uid"] == program.instructions[-1].uid
        assert "end unevenly" in render_divergence(report)

    def test_program_count_divergence(self, tmp_path):
        program = chain_program(n=3)
        a = trace_run(program, tmp_path / "a.trace")
        with vtrace.recording_scope(tmp_path / "b.trace"):
            Executor().run(program)
            Executor().run(program)
        report = find_divergence(a, load_trace(tmp_path / "b.trace"))
        assert report["kind"] == "programs"
        assert report["checked"] == 3

    def test_value_divergence_and_slice(self, tmp_path):
        from repro.resilience.faults import FaultEvent, FaultPlan

        program = chain_program(n=8)
        uid = 4
        plan = FaultPlan({uid: FaultEvent(uid, "value", magnitude=0.5)})
        a = trace_run(program, tmp_path / "a.trace", ring_size=8)
        b = trace_run(program, tmp_path / "b.trace",
                      executor=InjectingExecutor(plan), ring_size=8)
        report = find_divergence(a, b)
        assert report["kind"] == "value"
        assert report["uid"] == uid
        assert report["checked"] == uid
        assert "digests" in report["fields"]
        # Every upstream producer still matched: the fault site is the
        # first divergence, so the slice is all-green.
        assert report["slice"]
        assert all(step["matches"] for step in report["slice"])
        # The ring retained both sides' full values at the fault seq.
        name = report["dsts"][0]
        assert report["stats"][name]["max_abs"] >= 0.5
        text = render_divergence(report)
        assert f"instruction #{uid}" in text
        assert "backward slice" in text

    def test_uid_alignment_accepts_reordered_streams(self, tmp_path):
        # Two independent chains interleaved in a different (but still
        # dependency-respecting) order: the structural fingerprints
        # differ but every uid's values agree -- the schedule-replay
        # comparison tests/diff performs.
        in_order = Program()
        chains = []
        for chain in range(2):
            reg = in_order.new_register(f"c{chain}", (1,))
            in_order.emit(Opcode.CONST, [], [reg],
                          meta={"value": np.full(1, 1.0 + chain)})
            chains.append(reg)
        for chain in range(2):
            nxt = in_order.new_register(f"c{chain}", (1,))
            in_order.emit(Opcode.COPY, [chains[chain]], [nxt])
        reordered = Program(algorithm=in_order.algorithm)
        reordered.instructions = [in_order.instructions[i]
                                  for i in (1, 0, 3, 2)]
        reordered.register_shapes = dict(in_order.register_shapes)
        a = trace_run(in_order, tmp_path / "a.trace")
        b = trace_run(reordered, tmp_path / "b.trace")
        assert find_divergence(a, b, align="seq")["kind"] == "structure"
        assert find_divergence(a, b, align="uid") is None

    def test_unknown_alignment_raises(self, tmp_path):
        program = chain_program(n=2)
        a = trace_run(program, tmp_path / "a.trace")
        with pytest.raises(ValueError):
            find_divergence(a, a, align="lexical")


class TestBackwardSlice:
    def test_slice_walks_def_use_not_seq(self, tmp_path):
        # r0 -> r1 -> ... plus an unrelated CONST right before the
        # divergence point: the slice must skip it.
        program = chain_program(n=4)
        noise = program.new_register("noise", (1,))
        program.emit(Opcode.CONST, [], [noise],
                     meta={"value": np.zeros(1)})
        program.instructions.insert(3, program.instructions.pop())
        trace = trace_run(program, tmp_path / "a.trace")
        records = trace["programs"][0]["records"]
        by_uid = {r["uid"]: r for r in records}
        slice_ = backward_slice(records, records[-1], by_uid, limit=8)
        assert [s["dsts"][0] for s in slice_] == ["r2", "r1", "r0"]
        assert all(s["matches"] for s in slice_)


class TestFaultLocalization:
    """Acceptance criterion: the report pinpoints the injected site."""

    @pytest.mark.parametrize("app", ["MobileRobot", "Manipulator",
                                     "AutoVehicle", "Quadrotor"])
    def test_divergence_matches_injected_fault(self, app, tmp_path):
        clean = record_app_trace(app, 0, tmp_path / "clean.trace",
                                 ring_size=4)
        faulty = record_app_trace(app, 0, tmp_path / "faulty.trace",
                                  ring_size=4, fault=FAULT)
        assert len(faulty["fault_uids"]) == 1
        assert clean["fingerprint"] == faulty["fingerprint"]
        report = find_divergence(load_trace(tmp_path / "clean.trace"),
                                 load_trace(tmp_path / "faulty.trace"))
        assert report["kind"] == "value"
        assert report["uid"] == faulty["fault_uids"][0]
        # The report's provenance is the injected instruction's own.
        from repro.apps import all_applications

        program = {a.name: a for a in all_applications()}[app] \
            .compile_frame(0)
        instr = program.instructions[report["uid"]]
        assert instr.uid == report["uid"]
        expected = instr.provenance.to_dict() if instr.provenance else {}
        assert report["provenance"] == expected

    def test_identical_app_traces_are_byte_identical(self, tmp_path):
        record_app_trace("Manipulator", 0, tmp_path / "a.trace")
        record_app_trace("Manipulator", 0, tmp_path / "b.trace")
        assert (tmp_path / "a.trace").read_bytes() == \
            (tmp_path / "b.trace").read_bytes()

    def test_unknown_app_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown application"):
            record_app_trace("NoSuchApp", 0, tmp_path / "x.trace")


class TestCaptureWindow:
    def test_rerecord_requires_app_producer(self, tmp_path):
        trace = trace_run(chain_program(), tmp_path / "a.trace")
        assert rerecord_window(trace, 3, 2,
                               tmp_path / "cap.trace") is None

    def test_rerecord_window_around_fault(self, tmp_path):
        record_app_trace("Manipulator", 0, tmp_path / "clean.trace")
        faulty = record_app_trace("Manipulator", 0,
                                  tmp_path / "faulty.trace", fault=FAULT)
        uid = faulty["fault_uids"][0]
        trace = load_trace(tmp_path / "faulty.trace")
        window = rerecord_window(trace, uid, 2, tmp_path / "cap.trace")
        assert sorted(window) == list(range(uid - 2, uid + 3))
        assert all(entry["values"] for entry in window.values())


class TestDivergenceCli:
    def app_traces(self, tmp_path, fault=None):
        a, b = tmp_path / "a.trace", tmp_path / "b.trace"
        record_app_trace("Manipulator", 0, a)
        record_app_trace("Manipulator", 0, b, fault=fault)
        return str(a), str(b)

    def test_agreement_exits_zero(self, tmp_path, capsys):
        a, b = self.app_traces(tmp_path)
        assert obs_main(["divergence", a, b]) == 0
        assert "no divergences" in capsys.readouterr().out

    def test_divergence_exits_one(self, tmp_path, capsys):
        a, b = self.app_traces(tmp_path, fault=FAULT)
        assert obs_main(["divergence", a, b]) == 1
        assert "DIVERGED" in capsys.readouterr().out

    def test_missing_trace_exits_two(self, tmp_path, capsys):
        a, _ = self.app_traces(tmp_path)
        assert obs_main(["divergence", a,
                         str(tmp_path / "missing.trace")]) == 2
        assert "divergence" in capsys.readouterr().err

    def test_json_report(self, tmp_path):
        a, b = self.app_traces(tmp_path, fault=FAULT)
        artifact = tmp_path / "report.json"
        assert obs_main(["divergence", a, b,
                         "--json", str(artifact)]) == 1
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "repro.obs.divergence/1"
        assert payload["divergence"]["kind"] == "value"

    def test_capture_window_renders(self, tmp_path, capsys):
        a, b = self.app_traces(tmp_path, fault=FAULT)
        assert obs_main(["divergence", a, b, "--capture-window", "2",
                         "--capture-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "capture window around seq" in out
        assert "<- first divergence" in out
        assert (tmp_path / "capture_a.trace").exists()

    def test_vtrace_cli_round_trip(self, tmp_path, capsys):
        out_path = tmp_path / "cli.trace"
        assert obs_main(["vtrace", "--app", "Manipulator",
                         "--output", str(out_path)]) == 0
        assert "traced Manipulator" in capsys.readouterr().out
        assert load_trace(out_path)["programs"]

    def test_vtrace_cli_reports_fault_uids(self, tmp_path, capsys):
        out_path = tmp_path / "cli.trace"
        assert obs_main(["vtrace", "--app", "Manipulator",
                         "--output", str(out_path),
                         "--fault-rate", "0.01", "--fault-seed", "3",
                         "--fault-magnitude", "0.5",
                         "--max-faults", "1"]) == 0
        assert "injected fault uids" in capsys.readouterr().out

    def test_vtrace_cli_unknown_app_exits_two(self, tmp_path, capsys):
        assert obs_main(["vtrace", "--app", "Nope",
                         "--output", str(tmp_path / "x.trace")]) == 2
        assert "unknown application" in capsys.readouterr().err
