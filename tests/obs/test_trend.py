"""Tests for the bench wall-clock trend gate (:mod:`repro.obs.trend`)."""

import json

import pytest

from repro.bench.history import HISTORY_SCHEMA, append_history
from repro.obs.__main__ import main as obs_main
from repro.obs.trend import analyze_trend, render_trend, sparkline


def entry(medians, sha="abc123", mad=0.0005):
    return {
        "schema": HISTORY_SCHEMA,
        "sha": sha,
        "timestamp": 0.0,
        "iso_time": "2026-01-01T00:00:00Z",
        "mode": "quick",
        "seed": 0,
        "repeats": 5,
        "host": {"python": "3.11"},
        "apps": {
            name: {"median_s": m, "mad_s": mad, "instructions": 1000}
            for name, m in medians.items()
        },
    }


def series(app_medians, **kwargs):
    return [entry({"App": m}, **kwargs) for m in app_medians]


class TestAnalyzeTrend:
    def test_stable_series_is_clean(self):
        analysis = analyze_trend(series([0.030, 0.031, 0.029, 0.030]),
                                 window=3)
        row = analysis["apps"]["App"]
        assert not row["regressed"]
        assert analysis["flagged"] == []
        assert analysis["hard"] == []

    def test_step_regression_is_flagged(self):
        analysis = analyze_trend(series([0.030, 0.031, 0.029, 0.045]),
                                 window=3)
        row = analysis["apps"]["App"]
        assert row["regressed"]
        assert not row["hard"]
        assert analysis["flagged"] == ["App"]

    def test_hard_regression_at_twice_baseline(self):
        analysis = analyze_trend(series([0.030, 0.031, 0.029, 0.070]),
                                 window=3)
        assert analysis["hard"] == ["App"]

    def test_too_little_history_never_flags(self):
        analysis = analyze_trend(series([0.030, 0.090]))
        row = analysis["apps"]["App"]
        assert "regressed" not in row
        assert analysis["flagged"] == []

    def test_history_shorter_than_window_never_flags(self):
        # 4 prior entries satisfy MIN_BASELINE_ENTRIES but not the
        # configured window: the band must stay inactive rather than
        # judge from a degenerate sample.
        analysis = analyze_trend(series([0.030] * 4 + [0.090]), window=8)
        row = analysis["apps"]["App"]
        assert "regressed" not in row
        assert row["required"] == 8
        assert analysis["flagged"] == []
        assert analysis["hard"] == []

    def test_band_respects_latest_run_noise(self):
        # A perfectly quiet trailing window (MAD 0) must not flag a
        # latest median inside its own repeat noise.
        quiet = series([0.030, 0.030, 0.030, 0.032], mad=0.001)
        analysis = analyze_trend(quiet, window=3)
        assert not analysis["apps"]["App"]["regressed"]

    def test_window_bounds_the_baseline(self):
        # Ancient slow entries outside the window must not mask a
        # regression against the recent fast baseline.
        medians = [0.900] * 5 + [0.030, 0.031, 0.029, 0.030, 0.060]
        analysis = analyze_trend(series(medians), window=4)
        assert analysis["apps"]["App"]["regressed"]

    def test_invalid_window_raises(self):
        with pytest.raises(ValueError):
            analyze_trend([], window=0)

    def test_apps_missing_from_latest_are_dormant(self):
        entries = series([0.030, 0.031, 0.029, 0.030])
        entries.append(entry({"Other": 0.010}))
        analysis = analyze_trend(entries, window=3)
        # "App"'s latest point predates the newest entry; it still
        # renders but its verdict reflects its own series only.
        assert "App" in analysis["apps"]
        assert "Other" in analysis["apps"]
        assert analysis["flagged"] == []


class TestRender:
    def test_sparkline_range(self):
        spark = sparkline([1.0, 2.0, 3.0])
        assert len(spark) == 3
        assert spark[0] != spark[-1]
        assert sparkline([2.0, 2.0]) == "▁▁"
        assert sparkline([]) == ""

    def test_render_flags_and_sparklines(self):
        analysis = analyze_trend(series([0.030, 0.031, 0.029, 0.045]),
                                 window=3)
        text = render_trend(analysis)
        assert "FLAGGED" in text
        assert "App" in text

    def test_render_empty_history(self):
        text = render_trend(analyze_trend([]))
        assert "no wall-clock series yet" in text

    def test_render_reports_skipped_lines(self):
        analysis = analyze_trend(series([0.030, 0.031, 0.029, 0.030]))
        assert "2 unreadable" in render_trend(analysis, skipped=2)

    def test_render_insufficient_data_series(self):
        # Shorter than the window: series still renders, gate inactive.
        analysis = analyze_trend(series([0.030, 0.031, 0.090]), window=8)
        text = render_trend(analysis)
        assert "insufficient data: 2 prior entries, need >= 8" in text
        assert "gate inactive" in text
        assert "FLAGGED" not in text


class TestTrendCli:
    def write_history(self, tmp_path, medians):
        directory = str(tmp_path / "history")
        for m in medians:
            append_history(entry({"App": m}), directory=directory)
        return directory

    def test_clean_series_exits_zero(self, tmp_path, capsys):
        directory = self.write_history(
            tmp_path, [0.030, 0.031, 0.029, 0.030])
        assert obs_main(["trend", directory, "--window", "3"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_flagged_series_exits_one(self, tmp_path, capsys):
        directory = self.write_history(
            tmp_path, [0.030, 0.031, 0.029, 0.060])
        assert obs_main(["trend", directory, "--window", "3"]) == 1
        assert "FLAGGED" in capsys.readouterr().out

    def test_warn_only_downgrades_soft_flags(self, tmp_path):
        directory = self.write_history(
            tmp_path, [0.030, 0.031, 0.029, 0.045])
        assert obs_main(["trend", directory, "--window", "3",
                         "--warn-only"]) == 0

    def test_warn_only_still_fails_hard_regressions(self, tmp_path,
                                                    capsys):
        directory = self.write_history(
            tmp_path, [0.030, 0.031, 0.029, 0.090])
        assert obs_main(["trend", directory, "--window", "3",
                         "--warn-only"]) == 1
        assert "HARD" in capsys.readouterr().out

    def test_short_history_exits_zero(self, tmp_path, capsys):
        # A regression-sized jump on a history shorter than the window
        # must not fail the gate: insufficient data, exit 0.
        directory = self.write_history(
            tmp_path, [0.030, 0.031, 0.029, 0.090])
        assert obs_main(["trend", directory]) == 0
        out = capsys.readouterr().out
        assert "insufficient data" in out
        assert "gate inactive" in out

    def test_json_artifact(self, tmp_path):
        directory = self.write_history(
            tmp_path, [0.030, 0.031, 0.029, 0.060])
        artifact = tmp_path / "trend.json"
        assert obs_main(["trend", directory, "--window", "3",
                         "--json", str(artifact)]) == 1
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "repro.obs.trend/1"
        assert payload["flagged"] == ["App"]
        assert payload["apps"]["App"]["regressed"]

    def test_missing_history_exits_zero(self, tmp_path, capsys):
        assert obs_main(["trend", str(tmp_path / "nowhere")]) == 0
        assert "no wall-clock series yet" in capsys.readouterr().out

    def test_append_from_bench_document(self, tmp_path, capsys):
        from repro.bench.core import bench_document, write_bench

        document = bench_document(
            {"App/ooo": {"total_cycles": 1, "energy_mj": 1.0}},
            quick=True, seed=0,
            wallclock_section={
                "repeats": 2,
                "host": {"python": "3.11"},
                "apps": {"App": {"median_s": 0.03, "mad_s": 0.001,
                                 "instructions": 10}},
            })
        path = tmp_path / "BENCH_quick.json"
        write_bench(path, document)
        directory = str(tmp_path / "history")
        assert obs_main(["trend", directory, "--append", str(path)]) == 0
        lines = (tmp_path / "history" /
                 "solve_wallclock.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["apps"]["App"]["median_s"] == 0.03

    def test_append_rejects_no_wallclock_document(self, tmp_path,
                                                  capsys):
        from repro.bench.core import bench_document, write_bench

        document = bench_document(
            {"App/ooo": {"total_cycles": 1, "energy_mj": 1.0}},
            quick=True, seed=0)
        path = tmp_path / "BENCH_quick.json"
        write_bench(path, document)
        assert obs_main(["trend", str(tmp_path / "h"),
                         "--append", str(path)]) == 2
        assert "solve_wall_clock" in capsys.readouterr().err
