"""Every counter name in src/ must appear in the documented registry.

``docs/OBSERVABILITY.md`` carries a "Counter-name registry" table; this
lint AST-scans every ``*.incr(...)`` call site under ``src/`` and fails
when a literal (or f-string) metric name is undocumented or malformed.
F-string interpolations become ``*`` wildcards; a documented ``*``
stands for one or more dot-separated segments, so the dynamic
``resilience.supervisor.{kind}`` family matches the
``resilience.supervisor.*`` row.
"""

import ast
import re
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src"
DOC = REPO / "docs" / "OBSERVABILITY.md"

# The collector/registry implementations forward caller-supplied names
# through their own ``incr`` — mechanism, not producers.
MECHANISM_FILES = {
    SRC / "repro" / "obs" / "core.py",
    SRC / "repro" / "obs" / "fleet.py",
}

SEGMENT = re.compile(r"^[a-z0-9_]+$")


def documented_patterns():
    """The name-pattern column of the Counter-name registry table."""
    text = DOC.read_text()
    start = text.index("## Counter-name registry")
    section = text[start:]
    end = section.find("\n## ", 1)
    if end > 0:
        section = section[:end]
    patterns = []
    for line in section.splitlines():
        match = re.match(r"^\|\s*`([^`]+)`\s*\|", line)
        if match and match.group(1) != "name pattern":
            patterns.append(match.group(1))
    return patterns


def name_expressions(node):
    """The possible first-arg expressions of one incr() call."""
    if isinstance(node, ast.IfExp):
        return name_expressions(node.body) + name_expressions(node.orelse)
    return [node]


def call_pattern(arg):
    """A dotted pattern for one name expression, or None to skip.

    Constants and f-strings yield patterns (interpolations become
    ``*``); ``fleet.M_*`` attribute constants resolve to their value;
    anything else (a plain variable) is out of scope for the lint.
    """
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        parts = []
        for piece in arg.values:
            if isinstance(piece, ast.Constant):
                parts.append(str(piece.value))
            else:
                parts.append("*")
        return "".join(parts)
    if isinstance(arg, ast.Attribute) and \
            isinstance(arg.value, ast.Name) and \
            arg.value.id == "fleet" and arg.attr.startswith("M_"):
        from repro.obs import fleet

        return getattr(fleet, arg.attr)
    return None


def collect_call_sites():
    sites = []
    for path in sorted(SRC.rglob("*.py")):
        if path in MECHANISM_FILES:
            continue
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "incr"
                    and node.args):
                continue
            for expr in name_expressions(node.args[0]):
                pattern = call_pattern(expr)
                if pattern is not None:
                    sites.append((path.relative_to(REPO), node.lineno,
                                  pattern))
    return sites


def segments_unify(a, b):
    """Do two dot-split patterns describe a common name?  ``*`` is one
    or more segments."""
    if not a and not b:
        return True
    if not a or not b:
        return False
    if a[0] == "*" or b[0] == "*":
        star, other = (a, b) if a[0] == "*" else (b, a)
        return any(segments_unify(star[1:], other[k:])
                   for k in range(1, len(other) + 1)) or (
            bool(star[1:]) and segments_unify(star[1:], other))
    return a[0] == b[0] and segments_unify(a[1:], b[1:])


def matches_registry(pattern, registry):
    return any(segments_unify(pattern.split("."), doc.split("."))
               for doc in registry)


class TestCounterNameRegistry:
    def test_registry_table_exists(self):
        patterns = documented_patterns()
        assert len(patterns) >= 10
        assert "compiler.cse.hits" in patterns

    def test_scan_finds_known_producers(self):
        # Guard the lint itself: if the scanner breaks it must not
        # silently pass on an empty site list.
        patterns = [p for _, _, p in collect_call_sites()]
        assert "compiler.cse.hits" in patterns
        assert "fleet.solve.total" in patterns
        assert any(p.startswith("resilience.supervisor") for p in patterns)

    def test_every_counter_name_is_documented(self):
        registry = documented_patterns()
        undocumented = [
            f"{path}:{line}: {pattern}"
            for path, line, pattern in collect_call_sites()
            if not matches_registry(pattern, registry)
        ]
        assert not undocumented, (
            "counter names missing from the registry table in "
            "docs/OBSERVABILITY.md:\n  " + "\n  ".join(undocumented))

    def test_every_counter_name_is_well_formed(self):
        malformed = []
        for path, line, pattern in collect_call_sites():
            segments = pattern.split(".")
            if len(segments) < 2 or not all(
                    s == "*" or SEGMENT.match(s) for s in segments):
                malformed.append(f"{path}:{line}: {pattern}")
        assert not malformed, (
            "counter names must be lowercase dot-separated "
            "subsystem.component.metric:\n  " + "\n  ".join(malformed))

    def test_unification_semantics(self):
        assert segments_unify("a.b.c".split("."), "a.b.c".split("."))
        assert segments_unify("*.iterations".split("."),
                              "optim.health.*".split("."))
        assert segments_unify("resilience.supervisor.*".split("."),
                              "resilience.supervisor.*".split("."))
        assert not segments_unify("a.b".split("."), "a.c".split("."))
        assert not segments_unify("a.b".split("."), "a.b.c".split("."))
