"""Tests for the host hotspot renderer and the degradation guarantees.

The second half pins the satellite requirement that every document
consumer (``profile``, ``bottleneck``, ``hotspots``, ``trend``) stays
usable on **older** documents that predate this release's sections: a
clear message and exit 0, never a traceback.
"""

import json

import numpy as np
import pytest

from repro.compiler.executor import Executor
from repro.compiler.isa import Opcode, Program
from repro.obs import wallclock
from repro.obs.__main__ import main as obs_main
from repro.obs.hotspots import render_hotspots
from repro.obs.metrics import SCHEMA as METRICS_SCHEMA


def profiled_snapshot():
    program = Program()
    a = program.new_register("a", (3,))
    program.emit(Opcode.CONST, [], [a], meta={"value": np.ones(3)})
    b = program.new_register("b", (3,))
    program.emit(Opcode.COPY, [a], [b])
    with wallclock.profiled_scope() as profiler:
        Executor().run(program)
    return profiler.drain()


def bench_with_profile():
    return {
        "schema": "repro.bench/1", "mode": "quick", "seed": 0,
        "workloads": {"App/ooo": {"total_cycles": 1, "energy_mj": 1.0}},
        "solve_wall_clock": {
            "repeats": 3,
            "host": {"python": "3.11", "numpy": "2.0", "cpu_count": 4},
            "apps": {
                "App": {"median_s": 0.025, "mad_s": 0.001,
                        "instructions": 2,
                        "profile": profiled_snapshot()},
            },
        },
    }


def metrics_with_wallclock():
    return {
        "schema": METRICS_SCHEMA, "meta": {},
        "experiments": [{
            "experiment": "F13", "elapsed_s": 1.0,
            "span_timings_s": {"simulate": 0.5, "codegen": 0.1},
            "counters": {}, "simulations": [],
            "host_wallclock": profiled_snapshot(),
        }],
    }


class TestRenderHotspots:
    def test_bench_document(self):
        text = render_hotspots(bench_with_profile())
        assert "solve wall-clock (3 repeats/app" in text
        assert "App" in text
        assert "const" in text and "copy" in text
        assert "opcode x stage" in text

    def test_metrics_document(self):
        text = render_hotspots(metrics_with_wallclock())
        assert "const" in text
        assert "simulate" in text   # host phase timers from spans

    def test_merges_profiles_across_entries(self):
        document = metrics_with_wallclock()
        document["experiments"].append(
            dict(document["experiments"][0]))
        text = render_hotspots(document)
        assert "2 programs" in text

    def test_unknown_schema_raises(self):
        with pytest.raises(ValueError, match="unsupported schema"):
            render_hotspots({"schema": "someone-else/9"})

    def test_cli_exit_codes(self, tmp_path, capsys):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(bench_with_profile()))
        assert obs_main(["hotspots", str(path)]) == 0
        capsys.readouterr()
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "someone-else/9"}))
        assert obs_main(["hotspots", str(bogus)]) == 2
        assert "repro.obs hotspots: " in capsys.readouterr().err

    def test_cli_json_artifact(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(bench_with_profile()))
        artifact = tmp_path / "hotspots.json"
        assert obs_main(["hotspots", str(path),
                         "--json", str(artifact)]) == 0
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "repro.obs.hotspots/1"
        assert payload["solve_wall_clock"]["apps"]["App"]


def old_bench(tmp_path):
    """A pre-observability BENCH document: workloads only."""
    path = tmp_path / "old_bench.json"
    path.write_text(json.dumps({
        "schema": "repro.bench/1", "mode": "quick", "seed": 0,
        "workloads": {"App/ooo": {"total_cycles": 10, "energy_mj": 1.0}},
    }))
    return str(path)


def old_metrics(tmp_path):
    """A pre-wallclock metrics document: no host_wallclock entries."""
    path = tmp_path / "old_metrics.json"
    path.write_text(json.dumps({
        "schema": METRICS_SCHEMA, "meta": {},
        "experiments": [{"experiment": "F13", "elapsed_s": 1.0,
                         "span_timings_s": {}, "counters": {},
                         "simulations": []}],
    }))
    return str(path)


class TestOlderDocumentsDegradeGracefully:
    def test_hotspots_on_old_bench(self, tmp_path, capsys):
        assert obs_main(["hotspots", old_bench(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "no per-opcode profile recorded" in out

    def test_hotspots_on_old_metrics(self, tmp_path, capsys):
        assert obs_main(["hotspots", old_metrics(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "no per-opcode profile recorded" in out
        assert "no host.phase spans" in out

    def test_bottleneck_on_old_bench(self, tmp_path, capsys):
        assert obs_main(["bottleneck", old_bench(tmp_path)]) == 0
        assert "no cycle accounting recorded" in capsys.readouterr().out

    def test_bottleneck_on_old_metrics(self, tmp_path, capsys):
        assert obs_main(["bottleneck", old_metrics(tmp_path)]) == 0
        assert "no cycle accounting recorded" in capsys.readouterr().out

    def test_profile_on_old_metrics(self, tmp_path, capsys):
        assert obs_main(["profile", old_metrics(tmp_path)]) == 0
        assert "no factor attribution recorded" in capsys.readouterr().out
