"""End-to-end checks that every pipeline layer records telemetry."""

import numpy as np

from repro import obs
from repro.compiler import compile_graph
from repro.compiler.passes import optimize_program
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.optim import (
    GaussNewtonParams,
    LevenbergParams,
    gauss_newton,
    levenberg_marquardt,
)
from repro.sim import Simulator
from tests.obs.test_trace_export import pose_chain


def small_problem(seed=3):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(3):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.2)))
        values.insert(X(i + 1), Pose.random(3, rng, scale=0.5))
    return graph, values


class TestOptimizerTelemetry:
    def test_gauss_newton_iteration_spans(self):
        graph, values = small_problem()
        with obs.enabled_scope():
            result = gauss_newton(graph, values,
                                  GaussNewtonParams(max_iterations=5))
            snap = obs.collector().drain()
        spans = [s for s in snap.spans if s.name == "gn.iteration"]
        assert len(spans) == result.num_iterations
        for span, record in zip(spans, result.iterations):
            assert span.category == "optimizer"
            assert span.args["error_before"] == record.error_before
            assert span.args["error_after"] == record.error_after
            assert span.args["step_norm"] == record.step_norm
        assert snap.counters["optim.gn.iterations"] == result.num_iterations

    def test_levenberg_iteration_spans_carry_damping(self):
        graph, values = small_problem()
        with obs.enabled_scope():
            result = levenberg_marquardt(
                graph, values, LevenbergParams(max_iterations=5))
            snap = obs.collector().drain()
        spans = [s for s in snap.spans if s.name == "lm.iteration"]
        assert spans
        accepted = [s for s in spans if "step_norm" in s.args]
        assert len(accepted) == result.num_iterations
        for span in accepted:
            assert span.args["damping"] > 0.0
            assert span.args["trials"] >= 1
        assert snap.counters["optim.lm.iterations"] == result.num_iterations


class TestCompilerTelemetry:
    def test_pass_spans_record_instruction_deltas(self):
        compiled = pose_chain()
        before = len(compiled.program.instructions)
        with obs.enabled_scope():
            optimized = optimize_program(compiled.program)
            snap = obs.collector().drain()
        by_name = {s.name: s for s in snap.spans}
        assert {"cse", "dce", "optimize_program"} <= set(by_name)
        cse = by_name["cse"]
        assert cse.category == "compiler.pass"
        assert cse.args["instructions_before"] == before
        assert cse.args["removed"] == (before
                                       - cse.args["instructions_after"])
        dce = by_name["dce"]
        assert dce.args["instructions_after"] == len(optimized.instructions)
        assert snap.counters["compiler.cse.hits"] == cse.args["removed"]
        assert snap.counters["compiler.dce.removed"] == dce.args["removed"]

    def test_codegen_span_counts_emitted_instructions(self):
        graph, values = small_problem()
        with obs.enabled_scope():
            compiled = compile_graph(graph, values)
            snap = obs.collector().drain()
        span = next(s for s in snap.spans if s.name == "codegen")
        assert span.category == "compiler.pass"
        assert span.args["factors"] == len(graph.factors)
        assert span.args["instructions_after"] == len(
            compiled.program.instructions)
        assert snap.counters["compiler.codegen.instructions"] == len(
            compiled.program.instructions)


class TestSimulatorTelemetry:
    def test_sim_record_per_run(self):
        compiled = pose_chain()
        with obs.enabled_scope():
            result = Simulator().run(compiled.program, "ooo")
            snap = obs.collector().drain()
        assert len(snap.sims) == 1
        record = snap.sims[0]
        assert record["policy"] == "ooo"
        assert record["total_cycles"] == result.total_cycles
        assert record["stall_counts"] == result.stall_counts
        assert record["schedule"]  # forced on while observing
        assert set(record["utilization"]) == set(result.unit_busy_cycles)

    def test_stall_kinds_reflect_policy(self):
        compiled = pose_chain()
        sim = Simulator()
        ooo = sim.run(compiled.program, "ooo")
        seq = sim.run(compiled.program, "sequential")
        inorder = sim.run(compiled.program, "inorder")
        # OoO never stalls on RAW at the head of line (it reorders).
        assert "raw" not in ooo.stall_counts
        assert "overlap" not in ooo.stall_counts
        # The naive controller stalls on overlap; in-order on RAW.
        assert seq.stall_counts.get("overlap", 0) > 0
        assert inorder.stall_counts.get("raw", 0) > 0
        assert "overlap" not in inorder.stall_counts

    def test_debug_invariants_pass_on_real_schedules(self):
        compiled = pose_chain()
        with obs.enabled_scope(debug=True):
            for policy in ("ooo", "inorder", "sequential"):
                Simulator().run(compiled.program, policy)
            snap = obs.collector().drain()
        assert len(snap.sims) == 3

    def test_debug_invariants_catch_corrupt_accounting(self):
        import pytest

        from repro.errors import SimulationError

        compiled = pose_chain()
        sim = Simulator()
        result = sim.run(compiled.program, "ooo", record_schedule=True)
        latencies = sim._latencies(compiled.program)
        # Sane schedule passes...
        sim._check_schedule_invariants(compiled.program, result, latencies)
        # ...and corrupted busy-cycle accounting is caught.
        unit = next(iter(result.unit_busy_cycles))
        result.unit_busy_cycles[unit] += 1
        with pytest.raises(SimulationError,
                           match="busy-cycle accounting mismatch"):
            sim._check_schedule_invariants(compiled.program, result,
                                           latencies)
