"""SLO evaluation and the ``repro.obs slo`` / ``top`` commands."""

import contextlib
import io
import json

import pytest

from repro.obs.__main__ import main
from repro.obs.fleet import FLEET_SCHEMA, FleetRegistry, label_scope
from repro.obs.slo import (
    DEFAULT_TARGETS,
    collect_fleet,
    evaluate_slo,
    parse_target,
    render_slo,
    render_top,
)


def fleet_section(misses=0, wrong=0, degraded=0, crash=0, solves=10):
    reg = FleetRegistry()
    with label_scope(app="Quadrotor", executor="fused", session="t"):
        for i in range(solves):
            reg.incr("fleet.solve.total")
            reg.observe("fleet.solve.latency_s", 0.001 * (i + 1))
        for _ in range(solves - misses):
            reg.incr("fleet.solve.deadline_hit")
        for _ in range(misses):
            reg.incr("fleet.solve.deadline_miss")
        for _ in range(degraded):
            reg.incr("fleet.solve.degraded")
        for _ in range(wrong):
            reg.incr("fleet.solve.wrong")
        for _ in range(crash):
            reg.incr("fleet.solve.crash")
    return reg.snapshot()


class TestEvaluateSlo:
    def test_clean_fleet_passes_default_targets(self):
        result = evaluate_slo(fleet_section())
        assert result["passed"] is True
        (row,) = result["rows"]
        assert row["app"] == "Quadrotor"
        assert row["executor"] == "fused"
        assert row["solves"] == 10
        assert row["deadline_hit_rate"] == 1.0
        assert row["latency_unit"] == "seconds"
        # rank = q * (n - 1): p50 of 1..10 ms lands on the 5 ms bucket,
        # p99 on the 9 ms one (within the sketch's alpha).
        assert row["p50_s"] == pytest.approx(0.005, rel=0.02)
        assert row["p99_s"] == pytest.approx(0.009, rel=0.02)

    def test_deadline_miss_breaches_hit_rate_target(self):
        result = evaluate_slo(fleet_section(misses=2))
        assert result["passed"] is False
        (breach,) = result["breaches"]
        assert breach["target"] == "min_deadline_hit_rate"
        assert breach["value"] == pytest.approx(0.8)

    def test_wrong_and_crash_rates_breach_zero_targets(self):
        result = evaluate_slo(fleet_section(wrong=1, crash=1))
        targets = {b["target"] for b in result["breaches"]}
        assert targets == {"max_wrong_rate", "max_crash_rate"}

    def test_latency_target_applies_when_set(self):
        result = evaluate_slo(fleet_section(),
                              targets={"max_p99_s": 0.0001})
        assert result["passed"] is False
        assert result["breaches"][0]["target"] == "max_p99_s"

    def test_no_deadline_series_passes_vacuously(self):
        reg = FleetRegistry()
        reg.incr("fleet.solve.total", app="A", executor="fused")
        result = evaluate_slo(reg.snapshot())
        assert result["passed"] is True
        assert result["rows"][0]["deadline_hit_rate"] is None

    def test_stage_and_session_labels_fold_into_one_group(self):
        reg = FleetRegistry()
        for stage in ("rate=0.01", "rate=0.02"):
            reg.incr("fleet.solve.total", app="A", executor="e",
                     stage=stage)
        result = evaluate_slo(reg.snapshot())
        (row,) = result["rows"]
        assert row["solves"] == 2

    def test_sim_latency_used_when_no_wallclock_series(self):
        reg = FleetRegistry()
        reg.incr("fleet.solve.total", app="A", executor="e")
        reg.observe("fleet.solve.sim_latency_s", 0.5,
                    unit="sim_seconds", app="A", executor="e")
        (row,) = evaluate_slo(reg.snapshot())["rows"]
        assert row["latency_unit"] == "sim_seconds"
        assert row["p50_s"] == pytest.approx(0.5, rel=0.011)

    def test_render_mentions_verdict(self):
        assert "OK: all SLO targets met" in \
            render_slo(evaluate_slo(fleet_section()))
        assert "FAIL: 1 SLO breach(es)" in \
            render_slo(evaluate_slo(fleet_section(misses=5)))


class TestParseTarget:
    def test_parses_value_and_none(self):
        assert parse_target("max_p99_s=0.5") == ("max_p99_s", 0.5)
        assert parse_target("max_p99_s=none") == ("max_p99_s", None)
        assert parse_target("max_wrong_rate=off") == \
            ("max_wrong_rate", None)

    def test_rejects_unknown_or_malformed(self):
        with pytest.raises(ValueError):
            parse_target("nonsense=1")
        with pytest.raises(ValueError):
            parse_target("max_p99_s")
        with pytest.raises(ValueError):
            parse_target("max_p99_s=abc")
        assert set(DEFAULT_TARGETS) == {
            "min_deadline_hit_rate", "max_degraded_rate",
            "max_wrong_rate", "max_crash_rate", "max_p99_s"}


class TestCollectFleet:
    def test_bench_document_section_wins(self):
        section = fleet_section()
        assert collect_fleet({"fleet": section}) is section

    def test_metrics_experiments_merge(self):
        half = fleet_section(solves=5)
        document = {"experiments": [{"fleet": half}, {"fleet": half},
                                    {"no_fleet": True}]}
        merged = collect_fleet(document)
        assert merged["schema"] == FLEET_SCHEMA
        totals = [e for e in merged["series"]
                  if e["name"] == "fleet.solve.total"]
        assert totals[0]["value"] == 10.0

    def test_no_fleet_anywhere_returns_none(self):
        assert collect_fleet({"workloads": {}}) is None
        assert collect_fleet({"experiments": [{"x": 1}]}) is None


def write_document(tmp_path, section, name="doc.json"):
    path = tmp_path / name
    path.write_text(json.dumps({"schema": "repro.bench/1",
                                "fleet": section}))
    return path


class TestSloCli:
    def run(self, *argv):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main(list(argv))
        return code, buffer.getvalue()

    def test_exit_zero_when_targets_met(self, tmp_path):
        path = write_document(tmp_path, fleet_section())
        code, out = self.run("slo", str(path))
        assert code == 0
        assert "OK: all SLO targets met" in out

    def test_exit_one_on_breach(self, tmp_path):
        path = write_document(tmp_path, fleet_section(misses=5))
        code, out = self.run("slo", str(path))
        assert code == 1
        assert "min_deadline_hit_rate" in out

    def test_target_overrides(self, tmp_path):
        path = write_document(tmp_path, fleet_section(misses=5))
        code, _ = self.run("slo", str(path),
                           "--target", "min_deadline_hit_rate=0.4")
        assert code == 0
        code, _ = self.run("slo", str(path),
                           "--target", "min_deadline_hit_rate=none")
        assert code == 0

    def test_bad_target_exits_two(self, tmp_path, capsys):
        path = write_document(tmp_path, fleet_section())
        assert main(["slo", str(path), "--target", "bogus=1"]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_document_without_fleet_exits_two(self, tmp_path, capsys):
        path = tmp_path / "plain.json"
        path.write_text(json.dumps({"workloads": {}}))
        assert main(["slo", str(path)]) == 2
        assert "fleet" in capsys.readouterr().err

    def test_missing_file_exits_two(self, tmp_path, capsys):
        assert main(["slo", str(tmp_path / "nope.json")]) == 2
        capsys.readouterr()

    def test_json_artifact(self, tmp_path):
        path = write_document(tmp_path, fleet_section(misses=5))
        out = tmp_path / "slo.json"
        code, _ = self.run("slo", str(path), "--json", str(out))
        assert code == 1
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro.obs.slo/1"
        assert payload["passed"] is False


class TestTopCli:
    def run(self, *argv):
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main(list(argv))
        return code, buffer.getvalue()

    def test_summary_and_exports(self, tmp_path):
        path = write_document(tmp_path, fleet_section())
        prom = tmp_path / "fleet.prom"
        jsonl = tmp_path / "fleet.jsonl"
        code, out = self.run("top", str(path), "--prom", str(prom),
                             "--jsonl", str(jsonl))
        assert code == 0
        assert "fleet summary" in out
        assert "fleet.solve.total" in out
        from repro.obs.fleet import parse_prometheus_text

        parse_prometheus_text(prom.read_text())
        assert jsonl.read_text().strip()

    def test_render_top_handles_empty_section(self):
        text = render_top({"series": [], "windows": []})
        assert "(none)" in text

    def test_document_without_fleet_exits_two(self, tmp_path, capsys):
        path = tmp_path / "plain.json"
        path.write_text(json.dumps({"workloads": {}}))
        assert main(["top", str(path)]) == 2
        capsys.readouterr()
