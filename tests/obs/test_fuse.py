"""Tests for the fusion-opportunity analyzer (:mod:`repro.obs.fuse`)."""

import json

import pytest

from repro.compiler.isa import Opcode, Program
from repro.obs.fuse import (
    FUSE_SCHEMA,
    analyze_application,
    analyze_program,
    measure_dispatch_overhead_ns,
    render_fuse_report,
)


def diamond_program():
    """Four independent COPYs off one CONST, then a consumer ADD.

    CONST deps are free (preloaded data) so the COPYs share level 0
    with the CONST: L0 = {const, copy x4}, L1 = {add}.  The COPY group
    has size 4 and the ADD group size 1.
    """
    p = Program()
    a = p.new_register("a", (2,))
    import numpy as np

    p.emit(Opcode.CONST, [], [a], meta={"value": np.ones(2)})
    copies = []
    for _ in range(4):
        c = p.new_register("c", (2,))
        p.emit(Opcode.COPY, [a], [c])
        copies.append(c)
    s = p.new_register("s", (2,))
    p.emit(Opcode.ADD, [copies[0], copies[1]], [s])
    return p


class TestAnalyzeProgram:
    def test_report_shape(self):
        report = analyze_program(diamond_program(), label="diamond",
                                 dispatch_ns=1000.0)
        assert report["schema"] == FUSE_SCHEMA
        assert report["label"] == "diamond"
        assert report["instructions"] == 6
        assert report["levels"] == 2

    def test_same_level_same_opcode_grouping(self):
        report = analyze_program(diamond_program(), dispatch_ns=1000.0)
        copy = report["by_opcode"]["copy"]
        assert copy == {
            "instructions": 4, "groups": 1, "max_group": 4,
            "fraction_ge": {"2": 1.0, "4": 1.0},
        }
        add = report["by_opcode"]["add"]
        assert add["max_group"] == 1
        assert add["fraction_ge"] == {"2": 0.0, "4": 0.0}

    def test_groups_are_independent(self):
        """No member of a same-level group may depend on another member."""
        program = diamond_program()
        deps = program.dependencies()
        levels = program.levels()
        by_level = {}
        for instr in program.instructions:
            by_level.setdefault(
                (levels[instr.uid], instr.op), []).append(instr.uid)
        for members in by_level.values():
            for uid in members:
                assert not set(deps[uid]) & set(members)

    def test_batchable_fraction(self):
        report = analyze_program(diamond_program(), dispatch_ns=1000.0)
        # 4 of 6 instructions are in the size-4 COPY group.
        assert report["batchable_fraction"]["4"] == pytest.approx(4 / 6)

    def test_dispatch_savings_estimate(self):
        report = analyze_program(diamond_program(), dispatch_ns=1000.0)
        disp = report["dispatch"]
        # 6 instructions collapse to 3 groups: 3 dispatches eliminable.
        assert disp["eliminable_dispatches"] == 3
        assert disp["estimated_savings_ms"] == pytest.approx(3e-3)

    def test_shape_signatures_mark_uniform_subgroups(self):
        report = analyze_program(diamond_program(), dispatch_ns=1000.0)
        (row,) = [r for r in report["by_level"] if r["level"] == 0]
        group = next(g for g in row["groups"] if g["opcode"] == "copy")
        # All four COPYs share src/dst shape, so one uniform block.
        assert group["max_uniform"] == 4
        assert list(group["shapes"].values()) == [4]

    def test_report_is_json_serializable(self):
        json.dumps(analyze_program(diamond_program(), dispatch_ns=1.0))


class TestApplications:
    @pytest.fixture(scope="class")
    def reports(self):
        from repro.apps import all_applications

        return [analyze_application(app, seed=0, dispatch_ns=1000.0)
                for app in all_applications()]

    def test_every_app_analyzes(self, reports):
        assert len(reports) == 4
        for report in reports:
            assert report["instructions"] > 0
            assert report["levels"] > 1

    def test_acceptance_some_app_has_size4_groups(self, reports):
        """ISSUE acceptance: at least one app shows a meaningful
        fraction of instructions in same-opcode groups of size >= 4."""
        assert any(r["batchable_fraction"]["4"] > 0.5 for r in reports)

    def test_render_mentions_every_app(self, reports):
        text = render_fuse_report(reports)
        for report in reports:
            assert report["label"] in text
        assert "in groups >= 4" in text
        assert "dispatch overhead" in text


class TestDispatchMeasurement:
    def test_measured_overhead_is_positive_and_sane(self):
        ns = measure_dispatch_overhead_ns(samples=200)
        assert 10.0 < ns < 1e6
