"""Tests for the metrics-JSON exporter."""

import json

import pytest

from repro import obs
from repro.obs.core import Snapshot, SpanRecord
from repro.obs.metrics import (
    SCHEMA,
    experiment_entry,
    load_metrics,
    metrics_document,
    simulation_summary,
    write_metrics,
)


def fake_snapshot():
    return Snapshot(
        spans=[
            SpanRecord("cse", "compiler.pass", 0.0, 0.5,
                       {"removed": 3}),
            SpanRecord("cse", "compiler.pass", 1.0, 0.25, {}),
            SpanRecord("gn.iteration", "optimizer", 0.0, 0.1, {}),
        ],
        counters={"compiler.cse.hits": 3.0},
        sims=[{
            "policy": "ooo",
            "total_cycles": 100,
            "energy_mj": 1.5,
            "energy": {"dynamic_mj": 1.0, "static_mj": 0.4,
                       "memory_mj": 0.1},
            "stall_counts": {"structural": 7},
            "unit_busy_cycles": {"qr": 80},
            "unit_instance_counts": {"qr": 2},
            "schedule": {0: (0.0, 5.0)},
            "instructions": {0: {"op": "qr"}},
        }],
    )


class TestSimulationSummary:
    def test_strips_per_instruction_payloads(self):
        summary = simulation_summary(fake_snapshot().sims[0])
        assert "schedule" not in summary
        assert "instructions" not in summary
        assert summary["total_cycles"] == 100
        assert summary["stall_counts"] == {"structural": 7}


class TestExperimentEntry:
    def test_collects_pass_timings_and_counters(self):
        entry = experiment_entry("F13", 2.5, fake_snapshot())
        assert entry["experiment"] == "F13"
        assert entry["elapsed_s"] == 2.5
        assert entry["pass_timings_s"] == {"cse": 0.75}
        assert entry["span_timings_s"]["gn.iteration"] == pytest.approx(0.1)
        assert entry["counters"] == {"compiler.cse.hits": 3.0}
        assert len(entry["simulations"]) == 1

    def test_extra_fields_merge(self):
        entry = experiment_entry("X", 0.0, Snapshot(), extra={"note": "n"})
        assert entry["note"] == "n"


class TestDocument:
    def test_write_and_load_round_trip(self, tmp_path):
        path = tmp_path / "metrics.json"
        entry = experiment_entry("F13", 1.0, fake_snapshot())
        write_metrics(path, [entry], meta={"seed": 0})
        document = load_metrics(path)
        assert document["schema"] == SCHEMA
        assert document["meta"] == {"seed": 0}
        sims = document["experiments"][0]["simulations"]
        assert sims[0]["energy"]["dynamic_mj"] == 1.0

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(ValueError):
            load_metrics(path)

    def test_document_is_json_serializable(self):
        document = metrics_document(
            [experiment_entry("A", 0.1, fake_snapshot())]
        )
        json.loads(json.dumps(document))


class TestLiveExport:
    def test_real_simulation_snapshot_exports(self, tmp_path):
        from tests.obs.test_trace_export import pose_chain
        from repro.sim import Simulator

        compiled = pose_chain()
        with obs.enabled_scope():
            Simulator().run(compiled.program, "inorder")
            snap = obs.collector().drain()
        path = tmp_path / "m.json"
        write_metrics(path, [experiment_entry("E", 0.0, snap)])
        document = load_metrics(path)
        sim = document["experiments"][0]["simulations"][0]
        assert sim["policy"] == "inorder"
        assert sim["total_cycles"] > 0
        assert set(sim["energy"]) == {"dynamic_mj", "static_mj",
                                      "memory_mj"}
