"""Tests for the bottleneck renderer and the bottleneck/advise CLI."""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs.__main__ import main as obs_main
from repro.obs.bottleneck import (
    BENCH_SCHEMA,
    _collect_simulations,
    render_advice,
    render_bottleneck,
    render_simulation_bottleneck,
)
from repro.obs.metrics import experiment_entry, metrics_document, \
    write_metrics
from repro.compiler import compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.sim import Simulator
from repro.sim.bottleneck import advise


def pose_chain(n=5, seed=0):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values)


@pytest.fixture(scope="module")
def document():
    compiled = pose_chain()
    with obs.enabled_scope():
        Simulator().run(compiled.optimized().program, "ooo")
        snapshot = obs.collector().drain()
    return metrics_document([experiment_entry("TEST", 0.1, snapshot)])


def bench_like_document(sim_dict):
    """A minimal BENCH-schema document with one workload and a hint."""
    return {
        "schema": BENCH_SCHEMA,
        "workloads": {"MobileRobot/ooo": sim_dict},
        "bottleneck": {
            "MobileRobot/ooo": {
                "top_candidate": {
                    "label": "+1 matmul (1 -> 2)",
                    "predicted_speedup": 1.4,
                    "predicted_saved_cycles": 1234.0,
                },
            },
        },
    }


class TestCollectSimulations:
    def test_metrics_schema_labels_experiment_and_policy(self, document):
        sims = _collect_simulations(document)
        assert len(sims) == 1
        label, sim = sims[0]
        assert label.startswith("TEST:")
        assert label.endswith("/ooo")
        assert "cycle_accounting" in sim

    def test_bench_schema_uses_workload_keys(self, document):
        sim = document["experiments"][0]["simulations"][0]
        sims = _collect_simulations(bench_like_document(sim))
        assert [label for label, _ in sims] == ["MobileRobot/ooo"]

    def test_unknown_schema_is_an_error(self):
        with pytest.raises(ValueError, match="unsupported schema"):
            _collect_simulations({"schema": "something/else"})


class TestRenderBottleneck:
    def test_renders_identity_and_sections(self, document):
        text = render_bottleneck(document)
        assert "top-down cycle accounting" in text
        assert "makespan" in text
        assert "chain compute" in text
        assert "attributed wait" in text
        assert "gating chain" in text
        assert "roofline" in text
        assert "structural." in text

    def test_renders_bench_schema_with_whatif_hint(self, document):
        sim = document["experiments"][0]["simulations"][0]
        text = render_bottleneck(bench_like_document(sim))
        assert "MobileRobot/ooo" in text
        assert "what-if: +1 matmul (1 -> 2) -> predicted 1.40x" in text

    def test_identity_line_balances_to_the_makespan(self, document):
        sim = document["experiments"][0]["simulations"][0]
        acc = sim["cycle_accounting"]
        text = render_bottleneck(document)
        assert f"makespan {acc['total_cycles']:,} cycles" in text

    def test_document_without_accounting_degrades_gracefully(self):
        doc = {"schema": BENCH_SCHEMA,
               "workloads": {"w": {"total_cycles": 10}}}
        text = render_bottleneck(doc)
        assert "no cycle accounting recorded" in text

    def test_chain_listing_respects_top(self, document):
        sim = document["experiments"][0]["simulations"][0]
        block = render_simulation_bottleneck("x", sim, top=2)
        chain_rows = [ln for ln in block if ln.startswith("    #")]
        assert len(chain_rows) == 2


class TestCli:
    def test_bottleneck_over_metrics_file(self, document, tmp_path,
                                          capsys):
        path = tmp_path / "metrics.json"
        write_metrics(path, document["experiments"])
        assert obs_main(["bottleneck", str(path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "top-down cycle accounting" in out

    def test_bottleneck_json_artifact(self, document, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics(path, document["experiments"])
        artifact = tmp_path / "bottleneck.json"
        assert obs_main(["bottleneck", str(path),
                         "--json", str(artifact)]) == 0
        payload = json.loads(artifact.read_text())
        assert payload["schema"] == "repro.obs.bottleneck/1"
        assert payload["simulations"]
        assert "cycle_accounting" in payload["simulations"][0]

    def test_bottleneck_missing_file_exits_2(self, tmp_path, capsys):
        assert obs_main(["bottleneck", str(tmp_path / "nope.json")]) == 2
        assert "repro.obs bottleneck" in capsys.readouterr().err

    def test_bottleneck_bad_schema_exits_2(self, tmp_path, capsys):
        path = tmp_path / "odd.json"
        path.write_text(json.dumps({"schema": "other/9"}))
        assert obs_main(["bottleneck", str(path)]) == 2
        assert "unsupported schema" in capsys.readouterr().err

    def test_advise_single_app_minimal(self, capsys):
        code = obs_main(["advise", "--app", "MobileRobot", "--minimal",
                         "--top-k", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "what-if advisor" in out
        assert "MobileRobot [ooo]" in out
        assert "predicted" in out and "measured" in out
        assert "=> best validated" in out

    def test_advise_unknown_app_exits_2(self, capsys):
        assert obs_main(["advise", "--app", "Starship"]) == 2
        err = capsys.readouterr().err
        assert "unknown app" in err
        assert "MobileRobot" in err   # lists the known names


class TestRenderAdvice:
    @pytest.fixture(scope="class")
    def advice(self):
        compiled = pose_chain()
        return advise(compiled.optimized().program, policy="ooo",
                      top_k=1, label="pose-chain")

    def test_renders_candidates_and_best(self, advice):
        text = render_advice([advice])
        assert "what-if advisor" in text
        assert "pose-chain [ooo]" in text
        assert f"baseline {advice.baseline_cycles:,} cycles" in text
        assert "predicted" in text
        if advice.top_validated() is not None:
            assert "=> best validated" in text

    def test_unvalidated_candidates_are_marked(self, advice):
        text = render_advice([advice])
        for cand in advice.candidates:
            if not cand.validated:
                assert "(not validated)" in text
                break
