"""Differential test: cached compilation is indistinguishable from cold.

For randomized factor graphs, priming the cache with one graph and then
compiling a second graph with the same structure (different numerics)
must produce an instruction stream identical — field by field — to a
cold compile of the second graph, across register-namespace renames and
algorithm retags.  The rebound stream must also execute to the same
solution as the reference solver.

Tier-1 runs a small seed subset; the ``slow`` marker covers 60 seeds
(the acceptance sweep).
"""

import numpy as np
import pytest

from repro.compiler import CompilationCache, Executor, compile_graph
from repro.factorgraph import solve

from tests.diff.util import (
    assert_streams_equal,
    dense_reference,
    random_problem,
)


def check_seed(structure_seed):
    """One differential check: prime, rebind, compare to cold."""
    graph_a, values_a = random_problem(structure_seed, structure_seed + 1000)
    graph_b, values_b = random_problem(structure_seed, structure_seed + 2000)

    cache = CompilationCache()
    cache.compile(graph_a, values_a, algorithm="gn", register_prefix="gn#0")

    # Same prefix -> value-only rebind; renamed prefix twice -> the
    # variant path (first builds the renamed template, second shares it).
    targets = [("gn", "gn#0"), ("gn", "gn#1"), ("gn", "gn#1"),
               ("ctl", "ctl#2")]
    for algorithm, prefix in targets:
        rebound = cache.compile(graph_b, values_b, algorithm=algorithm,
                                register_prefix=prefix)
        cold = compile_graph(graph_b, values_b, algorithm=algorithm,
                             register_prefix=prefix)
        assert_streams_equal(rebound.program, cold.program)
        assert rebound.solution_registers == cold.solution_registers
        assert rebound.ordering == cold.ordering

    assert cache.stats()["misses"] == 1
    assert cache.stats()["hits"] == len(targets)

    # The last rebound stream still solves the right system.
    registers = Executor().run(rebound.program)
    result = rebound.extract_solution(registers)
    linear = graph_b.linearize(values_b)
    expected, _ = solve(linear, rebound.ordering)
    dense = dense_reference(graph_b, values_b)
    for key in expected:
        assert np.allclose(result[key], expected[key], atol=1e-8)
        assert np.allclose(result[key], dense[key], atol=1e-6)


@pytest.mark.parametrize("structure_seed", range(6))
def test_cached_equals_cold(structure_seed):
    check_seed(structure_seed)


@pytest.mark.slow
@pytest.mark.parametrize("structure_seed", range(60))
def test_cached_equals_cold_sweep(structure_seed):
    check_seed(structure_seed)
