"""Differential oracles: executor vs fused vs schedule replay vs NumPy.

Four independent evaluations of the same compiled Gauss-Newton step
must agree: in-order functional execution, the fused vectorized backend
(:class:`repro.compiler.FusedExecutor` — required *bit-identical* to the
interpreter), replay in the simulator's recorded (out-of-order) schedule
order, and the reference solvers.  Any scheduling bug that violates a
true data dependency, any codegen bug that mis-links the QR elimination
tree, or any fused-grouping bug that changes a reduction order, breaks
the agreement.
"""

import io

import numpy as np
import pytest

from repro.compiler import Executor, FusedExecutor, cached_compile_graph
from repro.factorgraph import solve
from repro.factorgraph.g2o import load_g2o

from tests.diff.util import (
    dense_reference,
    divergence_forensics,
    random_problem,
    replay_program,
)

G2O_2D = """\
VERTEX_SE2 0 0 0 0
VERTEX_SE2 1 1.05 0.08 0.12
VERTEX_SE2 2 2.1 -0.05 -0.04
VERTEX_SE2 3 2.9 0.9 1.55
EDGE_SE2 0 1 1.0 0.1 0.05 100 0 0 100 0 400
EDGE_SE2 1 2 1.0 -0.1 -0.07 100 0 0 100 0 400
EDGE_SE2 2 3 0.9 0.8 1.5 80 0 0 80 0 300
EDGE_SE2 0 3 2.8 1.0 1.6 50 0 0 50 0 200
"""


def check_oracles(graph, values, atol=1e-8):
    compiled = cached_compile_graph(graph, values, cache=None)
    registers = Executor().run(compiled.program)
    executed = compiled.extract_solution(registers)

    fused_registers = FusedExecutor().run(compiled.program)
    fused = compiled.extract_solution(fused_registers)

    replay = replay_program(compiled)
    replayed = compiled.extract_solution(Executor().run(replay))

    linear = graph.linearize(values)
    reference, _ = solve(linear, compiled.ordering)
    dense = dense_reference(graph, values)

    assert set(executed) == set(fused) == set(replayed) \
        == set(reference) == set(dense)
    for key in reference:
        assert np.allclose(executed[key], reference[key], atol=atol)
        if not np.array_equal(fused[key], executed[key]):
            # The fused backend must be *bit-identical*, not just close:
            # its kernels are engineered to perform the interpreter's
            # exact per-element operations.  Localize before failing.
            report = divergence_forensics(compiled.program,
                                          compiled.program,
                                          executor_b=FusedExecutor)
            raise AssertionError(
                f"interpreter vs fused backend disagree on {key}\n{report}"
            )
        if not np.allclose(replayed[key], executed[key], atol=1e-12):
            # Localize before failing: trace both streams and report
            # the first diverging instruction with its provenance.
            report = divergence_forensics(compiled.program, replay)
            raise AssertionError(
                f"executor vs schedule replay disagree on {key}\n{report}"
            )
        assert np.allclose(executed[key], dense[key], atol=1e-6)


@pytest.mark.parametrize("structure_seed", range(4))
def test_random_graph_oracles(structure_seed):
    graph, values = random_problem(structure_seed, structure_seed + 5000)
    check_oracles(graph, values)


def test_g2o_graph_oracles():
    graph, values = load_g2o(io.StringIO(G2O_2D))
    # Anchor the gauge so the system is well-posed.
    from repro.factorgraph import Isotropic, X
    from repro.factors import PriorFactor

    graph.add(PriorFactor(X(0), values.at(X(0)), Isotropic(3, 0.01)))
    check_oracles(graph, values)


@pytest.mark.slow
@pytest.mark.parametrize("structure_seed", range(50))
def test_random_graph_oracles_sweep(structure_seed):
    graph, values = random_problem(structure_seed, structure_seed + 7000)
    check_oracles(graph, values)
