"""Shared helpers for the differential-correctness harness.

The harness cross-checks four independent evaluations of the same
Gauss-Newton step:

- the compiled instruction stream on the functional ISA interpreter
  (:class:`repro.compiler.Executor`),
- the same stream replayed in the simulator's recorded schedule order,
- the reference sparse elimination solver
  (:func:`repro.factorgraph.solve`),
- a dense NumPy least-squares solve of the assembled system.

Graph *structure* and *values* are seeded independently so cache tests
can generate many graphs that share one compiled template.
"""

import numpy as np

from repro.compiler import Executor
from repro.compiler.isa import Program
from repro.factorgraph import FactorGraph, Isotropic, U, Values, X, Y
from repro.factors import (
    BetweenFactor,
    DynamicsFactor,
    GPSFactor,
    PriorFactor,
    SmoothnessFactor,
)
from repro.geometry import Pose

# Meta keys whose payloads are host-side objects (rebind swaps them for
# the current frame's factor/values); compared by identity, not value.
_OBJECT_META = ("factor", "values")


def random_structure(structure_seed):
    """Draw a random graph *shape*: pose count, space, factor placement.

    Returns a spec dict consumed by :func:`random_problem`; two calls
    with the same seed give graphs with identical structural
    fingerprints regardless of the value seed.
    """
    rng = np.random.default_rng(structure_seed)
    return {
        "space": int(rng.choice([2, 3])),
        "num_poses": int(rng.integers(2, 6)),
        "gps_at": [i for i in range(1, 6) if rng.random() < 0.4],
        "with_vectors": bool(rng.random() < 0.5),
        "loop_closure": bool(rng.random() < 0.3),
    }


def random_problem(structure_seed, value_seed):
    """A random well-posed mixed graph with decoupled structure/values."""
    spec = random_structure(structure_seed)
    rng = np.random.default_rng(value_seed)
    space, num_poses = spec["space"], spec["num_poses"]
    graph = FactorGraph()
    values = Values()

    poses = [Pose.random(space, rng) for _ in range(num_poses)]
    dim = poses[0].dim
    graph.add(PriorFactor(X(0), poses[0], Isotropic(dim, 0.1)))
    values.insert(X(0), poses[0].retract(0.05 * rng.standard_normal(dim)))
    for i in range(1, num_poses):
        graph.add(BetweenFactor(X(i), X(i - 1),
                                poses[i].ominus(poses[i - 1]),
                                Isotropic(dim, 0.2)))
        values.insert(X(i), poses[i].retract(0.05 * rng.standard_normal(dim)))
        if i in spec["gps_at"]:
            graph.add(GPSFactor(X(i), poses[i].t
                                + 0.1 * rng.standard_normal(space),
                                Isotropic(space, 0.3)))
    if spec["loop_closure"] and num_poses > 2:
        graph.add(BetweenFactor(X(num_poses - 1), X(0),
                                poses[-1].ominus(poses[0]),
                                Isotropic(dim, 0.5)))

    if spec["with_vectors"]:
        a = np.eye(2) + 0.1 * rng.standard_normal((2, 2))
        b = rng.standard_normal((2, 1))
        graph.add(PriorFactor(Y(0), rng.standard_normal(2),
                              Isotropic(2, 0.5)))
        values.insert(Y(0), rng.standard_normal(2))
        graph.add(DynamicsFactor(Y(0), U(0), Y(1), a, b, Isotropic(2, 0.1)))
        values.insert(U(0), rng.standard_normal(1))
        values.insert(Y(1), rng.standard_normal(2))
        graph.add(PriorFactor(U(0), np.zeros(1), Isotropic(1, 1.0)))
        graph.add(SmoothnessFactor(Y(0), Y(1), dof=1, dt=0.5,
                                   noise=Isotropic(2, 0.4)))

    return graph, values


def _meta_equal(key, a, b):
    if key in _OBJECT_META:
        return a is b
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    return a == b


def assert_streams_equal(got: Program, expected: Program):
    """Field-by-field instruction-stream equality (np-aware metas)."""
    assert len(got.instructions) == len(expected.instructions), (
        f"stream length {len(got.instructions)} != "
        f"{len(expected.instructions)}"
    )
    for a, b in zip(got.instructions, expected.instructions):
        assert a.uid == b.uid, (a.uid, b.uid)
        assert a.op is b.op, (a.uid, a.op, b.op)
        assert list(a.srcs) == list(b.srcs), (a.uid, a.srcs, b.srcs)
        assert list(a.dsts) == list(b.dsts), (a.uid, a.dsts, b.dsts)
        assert a.phase == b.phase, (a.uid, a.phase, b.phase)
        assert a.algorithm == b.algorithm, (a.uid, a.algorithm, b.algorithm)
        assert set(a.meta) == set(b.meta), (a.uid, set(a.meta) ^ set(b.meta))
        for key in a.meta:
            assert _meta_equal(key, a.meta[key], b.meta[key]), \
                f"uid {a.uid}: meta[{key!r}] differs"
    assert got.register_shapes == expected.register_shapes


def replay_program(compiled, policy="ooo"):
    """The compiled program reordered by the simulator's schedule.

    Runs the cycle-accurate simulator with schedule recording and
    returns a :class:`Program` whose instruction list is sorted by
    ``(start_cycle, uid)`` — the stream :func:`schedule_replay`
    executes, exposed separately so divergence forensics can trace it.
    """
    from repro.eval import ORIANNA_CONFIG
    from repro.sim import Simulator

    result = Simulator(ORIANNA_CONFIG).run(compiled.program, policy,
                                           record_schedule=True)
    order = sorted(compiled.program.instructions,
                   key=lambda i: (result.schedule[i.uid][0], i.uid))
    replay = Program(algorithm=compiled.program.algorithm)
    replay.instructions = order
    replay.register_shapes = dict(compiled.program.register_shapes)
    return replay


def schedule_replay(compiled, policy="ooo"):
    """Execute a compiled program in the simulator's schedule order.

    Any schedule that violates true data dependencies surfaces as an
    unwritten-register error or a wrong solution.
    """
    registers = Executor().run(replay_program(compiled, policy))
    return compiled.extract_solution(registers)


def divergence_forensics(program_a, program_b, align="uid",
                         executor_a=Executor, executor_b=Executor):
    """First-divergence report between two program executions, as text.

    Traces both executions with :mod:`repro.obs.vtrace` (ring disabled:
    the harness only needs localization, the values are re-derivable)
    and renders where the digest streams first disagree.  Returns ""
    when the executions agree — the caller attaches the report to its
    assertion message, turning "the oracles disagree" into "instruction
    #N with this provenance disagrees".

    ``executor_a``/``executor_b`` select the executor class per side, so
    the same machinery localizes interpreter-vs-replay *and*
    interpreter-vs-fused disagreements (pass the same program twice with
    different executors for the latter).
    """
    import os
    import tempfile

    from repro.obs import vtrace
    from repro.obs.divergence import (
        find_divergence,
        load_trace,
        render_divergence,
    )

    with tempfile.TemporaryDirectory() as tmp:
        path_a = os.path.join(tmp, "a.trace")
        path_b = os.path.join(tmp, "b.trace")
        with vtrace.recording_scope(path_a, ring_size=0):
            executor_a().run(program_a)
        with vtrace.recording_scope(path_b, ring_size=0):
            executor_b().run(program_b)
        report = find_divergence(load_trace(path_a), load_trace(path_b),
                                 align=align)
    if report is None:
        return ""
    return render_divergence(report)


def dense_reference(graph: FactorGraph, values: Values):
    """Dense NumPy least-squares solve of the linearized system."""
    return graph.linearize(values).solve_dense()
