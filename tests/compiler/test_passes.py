"""Tests for the CSE/DCE optimization passes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import Executor, Opcode, compile_graph
from repro.compiler.passes import (
    common_subexpression_elimination,
    dead_code_elimination,
    optimize_program,
)
from repro.factorgraph import (
    FactorGraph,
    Isotropic,
    Values,
    X,
    min_degree_ordering,
    solve,
)
from repro.factors import BetweenFactor, GPSFactor, PriorFactor
from repro.geometry import Pose


def star_problem(num_factors=4, seed=0):
    """Many factors adjacent to one pose: maximal Exp(phi) sharing."""
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 0.1))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(num_factors):
        graph.add(BetweenFactor(X(i + 1), X(0),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
        graph.add(GPSFactor(X(i + 1), rng.standard_normal(3),
                            Isotropic(3, 0.5)))
    return graph, values


class TestCse:
    def test_shared_pose_rotation_computed_once(self):
        """Exp(phi_x0) must appear once, not once per adjacent factor."""
        graph, values = star_problem()
        compiled = compile_graph(graph, values)
        before = compiled.program
        after = common_subexpression_elimination(before)

        def exp_count(program):
            # EXPs whose source is the x0 phi constant.
            phi = values.pose(X(0)).phi
            producers = {}
            for instr in program.instructions:
                if instr.op is Opcode.CONST:
                    v = np.asarray(instr.meta["value"])
                    if v.shape == (3,) and np.array_equal(v, phi):
                        producers[instr.dsts[0]] = True
            return sum(1 for i in program.instructions
                       if i.op is Opcode.EXP and i.srcs[0] in producers)

        assert exp_count(before) >= 5   # prior + 4 between factors
        assert exp_count(after) == 1

    def test_reduces_instruction_count(self):
        graph, values = star_problem()
        compiled = compile_graph(graph, values)
        after = common_subexpression_elimination(compiled.program)
        assert len(after) < len(compiled.program)

    def test_semantics_preserved(self):
        graph, values = star_problem()
        compiled = compile_graph(graph, values)
        expected = compiled.extract_solution(
            Executor().run(compiled.program))
        optimized = compiled.optimized()
        result = optimized.extract_solution(
            Executor().run(optimized.program))
        for key in expected:
            assert np.allclose(result[key], expected[key], atol=1e-12)

    def test_never_merges_across_algorithms(self):
        from repro.compiler import compile_application

        graph, values = star_problem(2)
        merged = compile_application({
            "a": (graph, values),
            "b": (graph, values),   # identical workload, distinct stream
        })
        after = common_subexpression_elimination(merged)
        tags = {i.algorithm for i in after if i.op is Opcode.QR}
        assert tags == {"a", "b"}
        deps = after.dependencies()
        tag = {i.uid: i.algorithm for i in after}
        for uid, preds in deps.items():
            for p in preds:
                assert tag[p] == tag[uid]


class TestDce:
    def test_drops_unused_constants(self):
        graph, values = star_problem(2)
        compiled = compile_graph(graph, values)
        program = compiled.program
        # Inject an unused constant.
        orphan = program.new_register("c", (3,))
        program.emit(Opcode.CONST, [], [orphan], {"value": np.zeros(3)})
        after = dead_code_elimination(program)
        assert all(orphan not in i.dsts for i in after.instructions)

    def test_keeps_solver_outputs(self):
        graph, values = star_problem(2)
        compiled = compiled = compile_graph(graph, values)
        after = dead_code_elimination(compiled.program)
        bsubs = [i for i in after.instructions if i.op is Opcode.BSUB]
        assert len(bsubs) == len(compiled.solution_registers)

    def test_live_roots_respected(self):
        program = compile_graph(*star_problem(1))[0] if False else None
        del program
        graph, values = star_problem(1)
        compiled = compile_graph(graph, values)
        p = compiled.program
        extra = p.new_register("c", (1,))
        p.emit(Opcode.CONST, [], [extra], {"value": np.ones(1)})
        kept = dead_code_elimination(p, live_roots=[extra])
        assert any(extra in i.dsts for i in kept.instructions)


class TestOptimizePipeline:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2000), st.integers(1, 4))
    def test_optimized_matches_reference_property(self, seed, n):
        graph, values = star_problem(n, seed=seed)
        linear = graph.linearize(values)
        ordering = min_degree_ordering(linear)
        expected, _ = solve(linear, ordering)

        compiled = compile_graph(graph, values, ordering).optimized()
        registers = Executor().run(compiled.program)
        result = compiled.extract_solution(registers)
        for key in expected:
            assert np.allclose(result[key], expected[key], atol=1e-8)

    def test_savings_reported(self):
        graph, values = star_problem(6)
        compiled = compile_graph(graph, values)
        optimized = optimize_program(
            compiled.program, list(compiled.solution_registers.values()))
        saving = 1 - len(optimized) / len(compiled.program)
        assert saving > 0.10  # at least 10% of instructions were redundant
