"""Tests for user-customized expression factors (Sec. 5.1, Equ. 3)."""

import numpy as np
import pytest

from repro.errors import CompileError
from repro.compiler import (
    ExpressionFactor,
    OMinus,
    PoseConst,
    PoseVar,
    VecAdd,
    VecConst,
    VecVar,
    pose_error,
)
from repro.factorgraph import (
    FactorGraph,
    Isotropic,
    Values,
    X,
    numerical_jacobian,
)
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose


def between_expression(k1, k2, measured):
    xi, xj = PoseVar(k1, measured.n), PoseVar(k2, measured.n)
    z = PoseConst("z", measured)
    return pose_error(OMinus(OMinus(xi, xj), z))


class TestEquivalenceWithLibraryFactor:
    def test_error_matches_between_factor(self):
        rng = np.random.default_rng(0)
        z = Pose.random(3, rng)
        custom = ExpressionFactor([X(0), X(1)], between_expression(X(0), X(1), z))
        library = BetweenFactor(X(0), X(1), z)
        v = Values({X(0): Pose.random(3, rng), X(1): Pose.random(3, rng)})
        assert np.allclose(custom.unwhitened_error(v),
                           library.unwhitened_error(v), atol=1e-12)

    def test_jacobians_match_between_factor(self):
        rng = np.random.default_rng(1)
        z = Pose.random(3, rng)
        custom = ExpressionFactor([X(0), X(1)], between_expression(X(0), X(1), z))
        library = BetweenFactor(X(0), X(1), z)
        v = Values({X(0): Pose.random(3, rng), X(1): Pose.random(3, rng)})
        for a, b in zip(custom.jacobians(v), library.jacobians(v)):
            assert np.allclose(a, b, atol=1e-9)

    def test_jacobians_match_2d(self):
        rng = np.random.default_rng(2)
        z = Pose.random(2, rng)
        custom = ExpressionFactor([X(0), X(1)], between_expression(X(0), X(1), z))
        v = Values({X(0): Pose.random(2, rng), X(1): Pose.random(2, rng)})
        for key, block in zip(custom.keys, custom.jacobians(v)):
            numeric = numerical_jacobian(custom, v, key)
            assert np.allclose(block, numeric, atol=1e-5)


class TestCustomErrors:
    def test_vector_expression_factor(self):
        # e = x - m: a hand-rolled prior via the expression API.
        target = np.array([2.0, -1.0])
        f = ExpressionFactor(
            [X(0)],
            [VecAdd(VecVar(X(0), 2), VecConst("m", target), sign=-1)],
        )
        v = Values({X(0): np.array([3.0, 0.0])})
        assert np.allclose(f.unwhitened_error(v), [1.0, 1.0])
        assert np.allclose(f.jacobians(v)[0], np.eye(2))

    def test_unused_key_gets_zero_block(self):
        target = np.zeros(2)
        f = ExpressionFactor(
            [X(0), X(1)],
            [VecAdd(VecVar(X(0), 2), VecConst("m", target), sign=-1)],
        )
        v = Values({X(0): np.ones(2), X(1): np.ones(3)})
        jacs = f.jacobians(v)
        assert np.allclose(jacs[0], np.eye(2))
        assert jacs[1].shape == (2, 3)
        assert np.allclose(jacs[1], 0.0)

    def test_expression_keys_must_be_declared(self):
        with pytest.raises(CompileError):
            ExpressionFactor([X(0)],
                             [VecAdd(VecVar(X(1), 2),
                                     VecConst("m", np.zeros(2)), sign=-1)])

    def test_noise_dim_checked(self):
        with pytest.raises(CompileError):
            ExpressionFactor([X(0)], [VecVar(X(0), 3)], Isotropic(2, 1.0))

    def test_optimization_with_custom_factor(self):
        """A pose-graph built purely from expression factors converges."""
        rng = np.random.default_rng(3)
        truth = [Pose.identity(3)]
        for _ in range(3):
            truth.append(truth[-1].compose(Pose.random(3, rng, scale=0.4)))

        graph = FactorGraph([PriorFactor(X(0), truth[0], Isotropic(6, 1e-3))])
        for i in range(3):
            z = truth[i + 1].ominus(truth[i])
            graph.add(ExpressionFactor(
                [X(i + 1), X(i)],
                between_expression(X(i + 1), X(i), z),
                Isotropic(6, 0.1),
            ))

        initial = Values({X(0): truth[0]})
        for i in range(1, 4):
            initial.insert(X(i), truth[i].retract(0.2 * rng.standard_normal(6)))
        result = graph.optimize(initial)
        assert result.converged
        for i, t in enumerate(truth):
            assert result.values.pose(X(i)).almost_equal(t, tol=1e-5)

    def test_components_property(self):
        f = ExpressionFactor([X(0)], [VecVar(X(0), 2)])
        assert len(f.components) == 1
        assert f.modfg.error_dim == 2
