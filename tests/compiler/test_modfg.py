"""Tests for MO-DFG emission: compiled errors/Jacobians vs references.

These are the compiler's core correctness tests: for every library factor
with an expression template, the compiled instruction stream (executed by
the functional executor) must reproduce the factor's residual and its
analytic Jacobians exactly.
"""

import numpy as np
import pytest

from repro.errors import CompileError
from repro.compiler import (
    Executor,
    MoDFG,
    ModfgEmitter,
    Opcode,
    PHASE_CONSTRUCT,
    Program,
    compile_factor,
    factor_expression,
)
from repro.compiler.codegen import RowBlock
from repro.factorgraph import U, Values, X, Y
from repro.factors import (
    BetweenFactor,
    CameraFactor,
    ControlCostFactor,
    DynamicsFactor,
    GoalFactor,
    GPSFactor,
    PriorFactor,
    SmoothnessFactor,
    StateCostFactor,
)
from repro.geometry import Pose


def run_factor(factor, values):
    """Compile one factor and execute; return its assembled row block."""
    program = Program()
    block = compile_factor(factor, program, values)
    registers = Executor().run(program)
    return program, block, registers[block.reg]


def reference_row(factor, values, block: RowBlock):
    """The row block the direct numpy linearization would produce."""
    gaussian = factor.linearize(values)
    width = max(s + d for s, d in block.cols.values())
    out = np.zeros((gaussian.rows, width + 1))
    for key, (start, dim) in block.cols.items():
        out[:, start : start + dim] = gaussian.block(key)
    out[:, -1] = gaussian.rhs
    return out


class TestExpressionTemplates:
    def check(self, factor, values, atol=1e-9):
        program, block, compiled = run_factor(factor, values)
        expected = reference_row(factor, values, block)
        assert compiled.shape == expected.shape
        assert np.allclose(compiled, expected, atol=atol), (
            f"compiled row block mismatch:\n{compiled}\nvs\n{expected}"
        )
        return program

    def test_between_3d(self):
        rng = np.random.default_rng(0)
        f = BetweenFactor(X(0), X(1), Pose.random(3, rng))
        v = Values({X(0): Pose.random(3, rng), X(1): Pose.random(3, rng)})
        program = self.check(f, v)
        # A true MO-DFG was emitted: Tbl. 3 primitives present, no EMBED.
        counts = program.count_by_opcode()
        assert counts.get(Opcode.EMBED, 0) == 0
        assert counts[Opcode.RR] >= 2
        assert counts[Opcode.LOG] == 1
        assert counts[Opcode.JRINV] == 1
        assert counts[Opcode.SKEW] >= 1

    def test_between_2d(self):
        rng = np.random.default_rng(1)
        f = BetweenFactor(X(0), X(1), Pose.random(2, rng))
        v = Values({X(0): Pose.random(2, rng), X(1): Pose.random(2, rng)})
        self.check(f, v)

    def test_pose_prior_3d(self):
        rng = np.random.default_rng(2)
        f = PriorFactor(X(0), Pose.random(3, rng))
        self.check(f, Values({X(0): Pose.random(3, rng)}))

    def test_pose_prior_2d(self):
        f = PriorFactor(X(0), Pose.from_xytheta(1.0, -2.0, 0.7))
        self.check(f, Values({X(0): Pose.from_xytheta(0.4, 0.1, -0.3)}))

    def test_vector_prior(self):
        f = PriorFactor(X(0), np.array([1.0, 2.0, 3.0]))
        self.check(f, Values({X(0): np.array([0.5, 0.5, 0.5])}))

    def test_gps_2d(self):
        f = GPSFactor(X(0), np.array([3.0, 4.0]))
        self.check(f, Values({X(0): Pose.from_xytheta(1.0, 1.0, 0.8)}))

    def test_gps_3d(self):
        rng = np.random.default_rng(3)
        f = GPSFactor(X(0), rng.standard_normal(3))
        self.check(f, Values({X(0): Pose.random(3, rng)}))

    def test_dynamics(self):
        a = np.array([[1.0, 0.1], [0.0, 1.0]])
        b = np.array([[0.005], [0.1]])
        f = DynamicsFactor(X(0), U(0), X(1), a, b)
        rng = np.random.default_rng(4)
        v = Values({X(0): rng.standard_normal(2), U(0): rng.standard_normal(1),
                    X(1): rng.standard_normal(2)})
        self.check(f, v)

    def test_state_and_control_cost(self):
        rng = np.random.default_rng(5)
        self.check(StateCostFactor(X(0), rng.standard_normal(3)),
                   Values({X(0): rng.standard_normal(3)}))
        self.check(ControlCostFactor(U(0), 2),
                   Values({U(0): rng.standard_normal(2)}))

    def test_smoothness(self):
        f = SmoothnessFactor(X(0), X(1), dof=2, dt=0.3)
        rng = np.random.default_rng(6)
        v = Values({X(0): rng.standard_normal(4), X(1): rng.standard_normal(4)})
        self.check(f, v)

    def test_goal(self):
        f = GoalFactor(X(0), np.array([1.0, -1.0]), dof=2)
        rng = np.random.default_rng(7)
        self.check(f, Values({X(0): rng.standard_normal(4)}))


class TestEmbeddedFactors:
    def test_camera_compiles_to_embed(self):
        cam_factor = CameraFactor(X(0), Y(0), np.array([320.0, 240.0]))
        assert factor_expression(cam_factor) is None
        v = Values({X(0): Pose.identity(3), Y(0): np.array([0.1, 0.2, 5.0])})
        program, block, compiled = run_factor(cam_factor, v)
        counts = program.count_by_opcode()
        assert counts[Opcode.EMBED] == 1
        expected = reference_row(cam_factor, v, block)
        assert np.allclose(compiled, expected)


class TestModfgStructure:
    def test_error_dim(self):
        f = BetweenFactor(X(0), X(1), Pose.identity(3))
        dfg = MoDFG(factor_expression(f))
        assert dfg.error_dim == 6
        # Leaf order is DAG-traversal order (R_j^T is visited before R_i);
        # only the set matters to codegen.
        assert set(dfg.leaf_keys()) == {X(0), X(1)}

    def test_rejects_rotation_component(self):
        from repro.compiler import RotVar

        with pytest.raises(CompileError):
            MoDFG([RotVar(X(0), 3)])

    def test_rejects_empty(self):
        with pytest.raises(CompileError):
            MoDFG([])

    def test_levels_expose_parallelism(self):
        """Instructions in the same BFS level are independent (Fig. 11)."""
        rng = np.random.default_rng(8)
        f = BetweenFactor(X(0), X(1), Pose.random(3, rng))
        v = Values({X(0): Pose.random(3, rng), X(1): Pose.random(3, rng)})
        program, _, _ = run_factor(f, v)
        levels = program.levels()
        deps = program.dependencies()
        by_level = {}
        for uid, lv in levels.items():
            by_level.setdefault(lv, []).append(uid)
        for lv, uids in by_level.items():
            if lv == 0:
                continue
            for a in uids:
                for b in uids:
                    assert b not in deps[a], (
                        f"same-level instructions {a}, {b} are dependent"
                    )

    def test_backward_requires_forward(self):
        f = BetweenFactor(X(0), X(1), Pose.identity(3))
        dfg = MoDFG(factor_expression(f))
        program = Program()
        v = Values({X(0): Pose.identity(3), X(1): Pose.identity(3)})
        emitter = ModfgEmitter(program, v, PHASE_CONSTRUCT)
        with pytest.raises(CompileError):
            emitter.emit_backward(dfg, dfg.components[0])
