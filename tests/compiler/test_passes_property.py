"""Property tests: CSE + DCE preserve program semantics.

For random factor graphs, the optimized program (common-subexpression
elimination followed by dead-code elimination) must execute to the same
Gauss-Newton step as the unoptimized stream, never grow the instruction
count, and keep every solution register live.  The same invariant is
checked through the compilation cache: rebind-then-optimize equals
cold-compile-then-optimize.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompilationCache, Executor, compile_graph

from tests.diff.util import random_problem


def _solutions_equal(a, b, atol=1e-10):
    assert set(a) == set(b)
    for key in a:
        assert np.allclose(a[key], b[key], atol=atol), key


@given(structure_seed=st.integers(0, 10_000),
       value_seed=st.integers(0, 10_000))
@settings(max_examples=12, deadline=None)
def test_optimized_program_matches_unoptimized(structure_seed, value_seed):
    graph, values = random_problem(structure_seed, value_seed)
    compiled = compile_graph(graph, values)
    optimized = compiled.optimized()

    assert len(optimized.program.instructions) \
        <= len(compiled.program.instructions)

    plain = compiled.extract_solution(Executor().run(compiled.program))
    opt = optimized.extract_solution(Executor().run(optimized.program))
    _solutions_equal(plain, opt)

    # Every solution register survived DCE.
    written = set()
    for instr in optimized.program.instructions:
        written.update(instr.dsts)
    assert set(optimized.solution_registers.values()) <= written


@given(structure_seed=st.integers(0, 10_000))
@settings(max_examples=8, deadline=None)
def test_rebind_then_optimize_matches_cold_then_optimize(structure_seed):
    prime_graph, prime_values = random_problem(structure_seed,
                                               structure_seed + 1)
    graph, values = random_problem(structure_seed, structure_seed + 2)

    cache = CompilationCache()
    cache.compile(prime_graph, prime_values)
    rebound = cache.compile(graph, values).optimized()
    cold = compile_graph(graph, values).optimized()

    assert len(rebound.program.instructions) \
        == len(cold.program.instructions)
    got = rebound.extract_solution(Executor().run(rebound.program))
    want = cold.extract_solution(Executor().run(cold.program))
    _solutions_equal(got, want)
