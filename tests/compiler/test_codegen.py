"""End-to-end compiler tests: compiled programs vs the reference solver."""

import numpy as np
import pytest

from repro.errors import CompileError
from repro.compiler import (
    Executor,
    Opcode,
    PHASE_BACKSUB,
    PHASE_CONSTRUCT,
    PHASE_DECOMPOSE,
    compile_application,
    compile_graph,
)
from repro.factorgraph import (
    FactorGraph,
    Isotropic,
    U,
    Values,
    X,
    Y,
    min_degree_ordering,
    solve,
)
from repro.factors import (
    BetweenFactor,
    CameraFactor,
    ControlCostFactor,
    DynamicsFactor,
    GPSFactor,
    PriorFactor,
    SmoothnessFactor,
    StateCostFactor,
)
from repro.geometry import Pose


def pose_chain_problem(n=4, space=3, seed=0):
    rng = np.random.default_rng(seed)
    truth = [Pose.identity(space)]
    for _ in range(n - 1):
        truth.append(truth[-1].compose(Pose.random(space, rng, scale=0.5)))
    graph = FactorGraph([PriorFactor(X(0), truth[0], Isotropic(truth[0].dim,
                                                               1e-2))])
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                truth[i + 1].ominus(truth[i])))
    values = Values()
    dim = truth[0].dim
    for i, t in enumerate(truth):
        values.insert(X(i), t.retract(0.1 * rng.standard_normal(dim)))
    return graph, values


def slam_problem(seed=1):
    """Poses + GPS + camera landmarks: mixes MO-DFG and EMBED factors."""
    rng = np.random.default_rng(seed)
    graph, values = pose_chain_problem(3, space=3, seed=seed)
    from repro.factors import PinholeCamera

    cam = PinholeCamera()
    for j in range(2):
        landmark = np.array([0.5 * j, -0.3, 6.0])
        values.insert(Y(j), landmark + 0.1 * rng.standard_normal(3))
        for i in range(3):
            pose = values.pose(X(i))
            p_cam = pose.rotation.T @ (landmark - pose.t)
            if p_cam[2] > 0.5:
                graph.add(CameraFactor(X(i), Y(j), cam.project(p_cam), cam))
    graph.add(GPSFactor(X(1), values.pose(X(1)).t + 0.05))
    return graph, values


def assert_compiled_matches_reference(graph, values, ordering=None):
    linear = graph.linearize(values)
    if ordering is None:
        ordering = min_degree_ordering(linear)
    expected, _ = solve(linear, ordering)
    compiled = compile_graph(graph, values, ordering)
    registers = Executor().run(compiled.program)
    solution = compiled.extract_solution(registers)
    assert set(solution) == set(expected)
    for k in expected:
        assert np.allclose(solution[k], expected[k], atol=1e-8), (
            f"compiled delta for {k}: {solution[k]} vs {expected[k]}"
        )
    return compiled


class TestCompiledSolveMatchesReference:
    def test_pose_chain_3d(self):
        graph, values = pose_chain_problem(5, space=3)
        assert_compiled_matches_reference(graph, values)

    def test_pose_chain_2d(self):
        graph, values = pose_chain_problem(5, space=2, seed=3)
        assert_compiled_matches_reference(graph, values)

    def test_slam_mixed_factors(self):
        graph, values = slam_problem()
        assert_compiled_matches_reference(graph, values)

    def test_lqr_control_graph(self):
        a = np.array([[1.0, 0.2], [0.0, 1.0]])
        b = np.array([[0.02], [0.2]])
        graph = FactorGraph([PriorFactor(X(0), np.array([1.0, 0.0]),
                                         Isotropic(2, 1e-3))])
        values = Values({X(0): np.array([1.0, 0.0])})
        for k in range(4):
            graph.add(DynamicsFactor(X(k), U(k), X(k + 1), a, b,
                                     Isotropic(2, 1e-3)))
            graph.add(ControlCostFactor(U(k), 1))
            graph.add(StateCostFactor(X(k + 1), np.zeros(2)))
            values.insert(U(k), np.zeros(1))
            values.insert(X(k + 1), np.zeros(2))
        assert_compiled_matches_reference(graph, values)

    def test_planning_graph(self):
        graph = FactorGraph()
        values = Values()
        for i in range(5):
            values.insert(X(i), np.array([i * 1.0, 0.0, 1.0, 0.0]))
        for i in range(4):
            graph.add(SmoothnessFactor(X(i), X(i + 1), dof=2, dt=1.0))
        graph.add(PriorFactor(X(0), np.array([0.0, 0.0, 1.0, 0.0]),
                              Isotropic(4, 1e-2)))
        graph.add(PriorFactor(X(4), np.array([4.0, 1.0, 1.0, 0.0]),
                              Isotropic(4, 1e-2)))
        assert_compiled_matches_reference(graph, values)

    def test_any_ordering_gives_same_solution(self):
        graph, values = pose_chain_problem(4, space=3, seed=7)
        keys = [X(i) for i in range(4)]
        rng = np.random.default_rng(0)
        for _ in range(3):
            order = list(keys)
            rng.shuffle(order)
            assert_compiled_matches_reference(graph, values, order)


class TestProgramStructure:
    def test_phases_present(self):
        graph, values = pose_chain_problem(3)
        compiled = compile_graph(graph, values)
        phases = compiled.program.count_by_phase()
        assert phases[PHASE_CONSTRUCT] > 0
        assert phases[PHASE_DECOMPOSE] == 3   # one QR per variable
        assert phases[PHASE_BACKSUB] == 3     # one BSUB per variable

    def test_qr_metadata_shapes(self):
        graph, values = pose_chain_problem(3)
        compiled = compile_graph(graph, values)
        qrs = [i for i in compiled.program if i.op is Opcode.QR]
        for qr in qrs:
            assert qr.meta["frontal_dim"] == 6
            total = qr.meta["total_cols"]
            assert total >= 6
            assert all(len(s["cols"]) >= 1 for s in qr.meta["sources"])

    def test_ordering_must_cover_keys(self):
        graph, values = pose_chain_problem(3)
        with pytest.raises(CompileError):
            compile_graph(graph, values, ordering=[X(0), X(1)])

    def test_critical_path_shorter_than_program(self):
        graph, values = pose_chain_problem(5)
        compiled = compile_graph(graph, values)
        nontrivial = [i for i in compiled.program
                      if i.op is not Opcode.CONST]
        assert compiled.program.critical_path_length() < len(nontrivial)

    def test_under_constrained_variable_rejected(self):
        graph = FactorGraph([
            # One scalar row cannot determine a 6-dof pose.
            GPSFactor(X(0), np.zeros(3)),
        ])
        values = Values({X(0): Pose.identity(3)})
        with pytest.raises(CompileError):
            compile_graph(graph, values, ordering=[X(0)])


class TestApplicationMerge:
    def build(self):
        loc_graph, loc_values = pose_chain_problem(3, seed=11)
        plan_graph = FactorGraph()
        plan_values = Values()
        for i in range(3):
            plan_values.insert(X(i), np.array([i * 1.0, 0.0, 1.0, 0.0]))
        for i in range(2):
            plan_graph.add(SmoothnessFactor(X(i), X(i + 1), dof=2, dt=1.0))
        plan_graph.add(PriorFactor(X(0), np.zeros(4), Isotropic(4, 1e-2)))
        plan_graph.add(PriorFactor(X(2), np.array([2.0, 0.0, 1.0, 0.0]),
                                   Isotropic(4, 1e-2)))
        return {
            "localization": (loc_graph, loc_values),
            "planning": (plan_graph, plan_values),
        }

    def test_merged_program_tags_algorithms(self):
        merged = compile_application(self.build())
        algorithms = {i.algorithm for i in merged}
        assert algorithms == {"localization", "planning"}

    def test_no_cross_algorithm_dependencies(self):
        """Register namespaces are disjoint: coarse-grained OoO is legal."""
        merged = compile_application(self.build())
        deps = merged.dependencies()
        tag = {i.uid: i.algorithm for i in merged}
        for uid, preds in deps.items():
            for p in preds:
                assert tag[p] == tag[uid]

    def test_merged_program_executes(self):
        merged = compile_application(self.build())
        Executor().run(merged)  # no exception: all registers resolve
