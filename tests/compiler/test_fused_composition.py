"""Composition tests: the fused backend with the rest of the toolkit.

The fused executor is a drop-in :class:`Executor`; these tests pin the
contracts that make it one when composed with the compilation cache
(rebind never re-plans), the observability stack (vtrace byte-identical,
wallclock per-group events), the resilience harness (explicit factories
win, with a warning), and the process-wide backend selection switches.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

import repro.obs as obs
from repro.compiler import Executor, FusedExecutor, cached_compile_graph
from repro.compiler.cache import CompilationCache
from repro.compiler.fused import (
    EXECUTOR_ENV,
    EXECUTOR_FUSED,
    EXECUTOR_INTERPRETER,
    default_executor_name,
    executor_factory,
    plan_for,
    set_default_executor,
)
from repro.obs import vtrace, wallclock
from repro.optim.compiled import CompiledSolver

from tests.diff.util import random_problem


@pytest.fixture
def problem():
    return random_problem(3, 31)


@pytest.fixture(autouse=True)
def _env_default_executor():
    """Each test starts from env-controlled (interpreter) selection."""
    previous = set_default_executor(None)
    yield
    set_default_executor(previous)


# ----------------------------------------------------------------------
# Compilation cache: a rebind rewrites slabs, never re-plans
# ----------------------------------------------------------------------

class TestPlanReuseAcrossRebinds:
    def test_rebound_programs_share_one_plan(self):
        cache = CompilationCache()
        compiled = [
            cached_compile_graph(*random_problem(3, seed), cache=cache)
            for seed in (100, 101, 102)
        ]
        assert cache.stats()["hits"] == 2
        plans = [plan_for(c.program) for c in compiled]
        assert plans[0] is plans[1] is plans[2]

    def test_plan_built_once_across_rebind_executions(self):
        cache = CompilationCache()
        obs.enable()
        try:
            obs.collector().drain()
            for seed in (200, 201, 202, 203):
                compiled = cached_compile_graph(
                    *random_problem(3, seed), cache=cache)
                FusedExecutor().run(compiled.program)
            snapshot = obs.collector().drain()
        finally:
            obs.disable()
        assert snapshot.counters["fused.plan.build"] == 1
        assert snapshot.counters["fused.plan.hit"] == 3

    def test_rebind_refreshes_constants(self, problem):
        """Same structure, different values: the plan is shared but the
        rebound CONST slabs (and their memoized stacks) are not."""
        cache = CompilationCache()
        a = cached_compile_graph(*random_problem(3, 300), cache=cache)
        b = cached_compile_graph(*random_problem(3, 301), cache=cache)
        sol_a = a.extract_solution(FusedExecutor().run(a.program))
        sol_b = b.extract_solution(FusedExecutor().run(b.program))
        ref_a = a.extract_solution(Executor().run(a.program))
        ref_b = b.extract_solution(Executor().run(b.program))
        for key in ref_a:
            assert np.array_equal(sol_a[key], ref_a[key])
            assert np.array_equal(sol_b[key], ref_b[key])
        assert any(not np.array_equal(sol_a[k], sol_b[k]) for k in sol_a)


# ----------------------------------------------------------------------
# Observability: vtrace and wallclock compose
# ----------------------------------------------------------------------

class TestTracingComposition:
    def test_vtrace_byte_identical_across_executors(self, problem, tmp_path):
        compiled = cached_compile_graph(*problem, cache=None)
        path_interp = tmp_path / "interp.trace"
        path_fused = tmp_path / "fused.trace"
        with vtrace.recording_scope(str(path_interp), ring_size=0):
            Executor().run(compiled.program)
        with vtrace.recording_scope(str(path_fused), ring_size=0):
            FusedExecutor().run(compiled.program)
        assert path_interp.read_bytes() == path_fused.read_bytes()

    def test_wallclock_records_per_group_events(self, problem):
        compiled = cached_compile_graph(*problem, cache=None)
        plan = plan_for(compiled.program)
        with wallclock.profiled_scope() as profiler:
            FusedExecutor().run(compiled.program)
        snap = profiler.snapshot()
        assert snap["programs"] == 1
        # One call per instruction is still attributed (calls=member
        # count per group event), so totals match the interpreter view.
        assert snap["instructions"] == len(compiled.program.instructions)
        assert snap["total_self_ns"] > 0
        assert set(snap["by_opcode"]) == {
            instr.op.value for instr in compiled.program.instructions
        }
        # But the number of timed events is the plan's dispatch count,
        # not the instruction count — that is the fusion win.
        assert plan.dispatch_count() < len(compiled.program.instructions)

    def test_vtrace_and_wallclock_together(self, problem, tmp_path):
        compiled = cached_compile_graph(*problem, cache=None)
        path = tmp_path / "both.trace"
        with wallclock.profiled_scope() as profiler:
            with vtrace.recording_scope(str(path), ring_size=0):
                FusedExecutor().run(compiled.program)
        assert profiler.snapshot()["programs"] == 1
        assert path.stat().st_size > 0


# ----------------------------------------------------------------------
# Resilience: explicit executor factories win, with a warning
# ----------------------------------------------------------------------

class TestResilienceComposition:
    def test_explicit_factory_falls_back_with_warning(self, problem):
        from repro.resilience.executor import ResilientExecutor

        graph, values = problem
        solver = CompiledSolver(executor="fused",
                                executor_factory=ResilientExecutor)
        with pytest.warns(RuntimeWarning,
                          match="instruction-level"):
            hardened = solver.solve(graph, values)
        reference = CompiledSolver().solve(graph, values)
        for key in reference:
            assert np.array_equal(hardened[key], reference[key])

    def test_warning_emitted_once(self, problem):
        from repro.resilience.executor import ResilientExecutor

        graph, values = problem
        solver = CompiledSolver(executor="fused",
                                executor_factory=ResilientExecutor)
        with pytest.warns(RuntimeWarning):
            solver.solve(graph, values)
        import warnings as _w
        with _w.catch_warnings():
            _w.simplefilter("error")
            solver.solve(graph, values)  # must not warn again

    def test_fallback_counted_once_per_structure(self, problem):
        from repro.resilience.executor import ResilientExecutor

        graph, values = problem
        solver = CompiledSolver(executor="fused",
                                executor_factory=ResilientExecutor)
        with obs.enabled_scope():
            with pytest.warns(RuntimeWarning):
                solver.solve(graph, values)
            solver.solve(graph, values)  # same structure: no new event
            snap = obs.collector().drain()
        assert snap.counters["resilience.supervisor.fallback"] == 1.0
        spans = [s for s in snap.spans
                 if s.name == "resilience.supervisor.fallback"]
        assert len(spans) == 1
        assert spans[0].args["fingerprint"]

    def test_fallback_counted_per_distinct_structure(self, problem):
        from repro.resilience.executor import ResilientExecutor

        graph, values = problem
        other_graph, other_values = random_problem(4, 57)
        solver = CompiledSolver(executor="fused",
                                executor_factory=ResilientExecutor)
        with obs.enabled_scope():
            with pytest.warns(RuntimeWarning):
                solver.solve(graph, values)
            with pytest.warns(RuntimeWarning):
                solver.solve(other_graph, other_values)
            snap = obs.collector().drain()
        assert snap.counters["resilience.supervisor.fallback"] == 2.0

    def test_fault_campaign_recovers_on_fallback_path(self, problem):
        """A fused-requesting solver with an injecting hardened
        executor still completes the campaign via recovery."""
        from repro.resilience.abft import has_checker
        from repro.resilience.executor import ResilientExecutor
        from repro.resilience.faults import FaultEvent, FaultPlan
        from repro.resilience.spec import RecoveryPolicy

        graph, values = problem
        compiled = cached_compile_graph(graph, values, cache=None)
        uid = next(i.uid for i in compiled.program.instructions
                   if has_checker(i.op) and i.op.value != "const")
        plan = FaultPlan({uid: FaultEvent(uid, "value", magnitude=0.5)})
        solver = CompiledSolver(
            executor="fused",
            executor_factory=lambda: ResilientExecutor(
                plan, RecoveryPolicy()))
        with pytest.warns(RuntimeWarning):
            hardened = solver.solve(graph, values)
        reference = CompiledSolver().solve(graph, values)
        for key in reference:
            assert np.allclose(hardened[key], reference[key], atol=1e-8)


# ----------------------------------------------------------------------
# Backend selection: env var / override / per-solver choice
# ----------------------------------------------------------------------

class TestBackendSelection:
    def test_default_is_interpreter(self, monkeypatch):
        monkeypatch.delenv(EXECUTOR_ENV, raising=False)
        assert default_executor_name() == EXECUTOR_INTERPRETER
        assert executor_factory() is Executor

    def test_env_selects_fused(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "fused")
        assert default_executor_name() == EXECUTOR_FUSED
        assert executor_factory() is FusedExecutor

    def test_env_typo_raises(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "fsued")
        with pytest.raises(ValueError, match="fsued"):
            default_executor_name()

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTOR_ENV, "interpreter")
        set_default_executor("fused")
        assert executor_factory() is FusedExecutor
        set_default_executor(None)
        assert executor_factory() is Executor

    def test_set_default_rejects_unknown(self):
        with pytest.raises(ValueError):
            set_default_executor("gpu")

    def test_solver_executor_name_validated(self):
        with pytest.raises(ValueError):
            CompiledSolver(executor="nope")

    def test_backend_kwarg_reaches_optimizers(self, problem):
        from repro.optim import GaussNewtonParams, gauss_newton

        graph, values = problem
        params = GaussNewtonParams(max_iterations=5)
        fused_result = gauss_newton(graph, values, params,
                                    backend="fused")
        compiled_result = gauss_newton(graph, values, params,
                                       backend="compiled")
        assert len(fused_result.iterations) == \
            len(compiled_result.iterations)
        for a, b in zip(fused_result.iterations,
                        compiled_result.iterations):
            assert a.error_after == b.error_after
            assert a.step_norm == b.step_norm

    def test_unknown_backend_rejected(self, problem):
        from repro.optim import gauss_newton

        graph, values = problem
        with pytest.raises(ValueError, match="backend"):
            gauss_newton(graph, values, backend="vectorized")

    def test_env_var_reaches_subprocess_solves(self, problem):
        """REPRO_EXECUTOR=fused in the environment switches a fresh
        process's compiled solves onto the fused path."""
        code = (
            "from repro.compiler.fused import default_executor_name, "
            "executor_factory, FusedExecutor\n"
            "assert default_executor_name() == 'fused'\n"
            "assert executor_factory() is FusedExecutor\n"
        )
        env = dict(os.environ, REPRO_EXECUTOR="fused")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        subprocess.run([sys.executable, "-c", code], check=True,
                       env=env, cwd=os.path.dirname(
                           os.path.dirname(os.path.dirname(
                               os.path.abspath(__file__)))))
