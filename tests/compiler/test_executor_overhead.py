"""The wall-clock profiler and value-tracer hooks must be free while
disabled.

``Executor.run`` consults :func:`repro.obs.wallclock.active` and
:func:`repro.obs.vtrace.active` **once per program**; with neither
installed the interpreter loop is the same plain ``for instr:
execute(instr)`` the seed executor ran.  These tests pin that: the
disabled path stays within a small factor of a hand-rolled execute loop
on a dispatch-bound program, and the per-instruction timing/digest
loops only exist while a hook is active.
"""

import time

import numpy as np

from repro.compiler.executor import Executor
from repro.compiler.isa import Opcode, Program
from repro.obs import vtrace, wallclock


def dispatch_bound_program(n=2000):
    """A long chain of 1-element COPYs: all dispatch, no numpy work."""
    program = Program()
    reg = program.new_register("r", (1,))
    program.emit(Opcode.CONST, [], [reg], meta={"value": np.zeros(1)})
    for _ in range(n):
        nxt = program.new_register("r", (1,))
        program.emit(Opcode.COPY, [reg], [nxt])
        reg = nxt
    return program


def best_of(fn, repeats=5):
    """Minimum wall time over repeats: robust to scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


class TestDisabledOverhead:
    def test_run_matches_plain_execute_loop(self):
        program = dispatch_bound_program()
        assert wallclock.active() is None
        assert vtrace.active() is None

        def plain():
            ex = Executor()
            for instr in program.instructions:
                ex.execute(instr)

        def instrumented():
            Executor().run(program)

        # Warm both paths before timing.
        plain()
        instrumented()
        baseline = best_of(plain)
        hooked = best_of(instrumented)
        # The hook adds one module-global read per run() call, which is
        # noise next to ~2000 dispatches; 1.5x absorbs slow-CI jitter
        # while still catching an accidental per-instruction check.
        assert hooked < baseline * 1.5 + 1e-3, (
            f"disabled-profiler run() too slow: {hooked:.4f}s vs "
            f"plain loop {baseline:.4f}s"
        )

    def test_disabled_tracer_stays_within_bound(self, tmp_path):
        # Same bound as the profiler: the value tracer adds exactly one
        # more module-global read to the disabled run() path.  Warm a
        # traced run first so its code paths are compiled, then time
        # the disabled path.
        program = dispatch_bound_program()
        with vtrace.recording_scope(tmp_path / "warm.trace",
                                    ring_size=0):
            Executor().run(program)
        assert vtrace.active() is None

        def plain():
            ex = Executor()
            for instr in program.instructions:
                ex.execute(instr)

        def instrumented():
            Executor().run(program)

        plain()
        instrumented()
        baseline = best_of(plain)
        hooked = best_of(instrumented)
        assert hooked < baseline * 1.5 + 1e-3, (
            f"disabled-tracer run() too slow: {hooked:.4f}s vs "
            f"plain loop {baseline:.4f}s"
        )

    def test_profiled_run_actually_pays_for_timing(self):
        # Sanity check the test itself measures the right thing: with a
        # profiler installed the same program records every dispatch.
        program = dispatch_bound_program(n=50)
        with wallclock.profiled_scope() as profiler:
            Executor().run(program)
        snap = profiler.drain()
        assert snap["instructions"] == len(program.instructions)
        assert snap["total_self_ns"] > 0

    def test_traced_run_records_every_instruction(self, tmp_path):
        import json

        program = dispatch_bound_program(n=50)
        path = tmp_path / "a.trace"
        with wallclock.profiled_scope() as profiler, \
                vtrace.recording_scope(path, ring_size=0):
            Executor().run(program)
        # Tracing composes with profiling: both hooks see every
        # instruction of the same run.
        with open(path) as fh:
            records = sum(1 for line in fh
                          if json.loads(line)["kind"] == "instr")
        assert records == len(program.instructions)
        assert profiler.drain()["instructions"] == \
            len(program.instructions)
