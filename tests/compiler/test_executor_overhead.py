"""The wall-clock profiler hook must be free while disabled.

``Executor.run`` consults :func:`repro.obs.wallclock.active` **once per
program**; with no profiler installed the interpreter loop is the same
plain ``for instr: execute(instr)`` the seed executor ran.  These tests
pin that: the disabled path stays within a small factor of a hand-rolled
execute loop on a dispatch-bound program, and the per-instruction timing
loop only exists while a profiler is active.
"""

import time

import numpy as np

from repro.compiler.executor import Executor
from repro.compiler.isa import Opcode, Program
from repro.obs import wallclock


def dispatch_bound_program(n=2000):
    """A long chain of 1-element COPYs: all dispatch, no numpy work."""
    program = Program()
    reg = program.new_register("r", (1,))
    program.emit(Opcode.CONST, [], [reg], meta={"value": np.zeros(1)})
    for _ in range(n):
        nxt = program.new_register("r", (1,))
        program.emit(Opcode.COPY, [reg], [nxt])
        reg = nxt
    return program


def best_of(fn, repeats=5):
    """Minimum wall time over repeats: robust to scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


class TestDisabledOverhead:
    def test_run_matches_plain_execute_loop(self):
        program = dispatch_bound_program()
        assert wallclock.active() is None

        def plain():
            ex = Executor()
            for instr in program.instructions:
                ex.execute(instr)

        def instrumented():
            Executor().run(program)

        # Warm both paths before timing.
        plain()
        instrumented()
        baseline = best_of(plain)
        hooked = best_of(instrumented)
        # The hook adds one module-global read per run() call, which is
        # noise next to ~2000 dispatches; 1.5x absorbs slow-CI jitter
        # while still catching an accidental per-instruction check.
        assert hooked < baseline * 1.5 + 1e-3, (
            f"disabled-profiler run() too slow: {hooked:.4f}s vs "
            f"plain loop {baseline:.4f}s"
        )

    def test_profiled_run_actually_pays_for_timing(self):
        # Sanity check the test itself measures the right thing: with a
        # profiler installed the same program records every dispatch.
        program = dispatch_bound_program(n=50)
        with wallclock.profiled_scope() as profiler:
            Executor().run(program)
        snap = profiler.drain()
        assert snap["instructions"] == len(program.instructions)
        assert snap["total_self_ns"] > 0
