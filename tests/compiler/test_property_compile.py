"""Property test: random factor graphs compile to correct programs.

For arbitrary randomly generated well-posed factor graphs (mixed pose and
vector variables, mixed factor types, random elimination orders), the
compiled instruction stream executed on the functional ISA interpreter
must produce the same Gauss-Newton step as the reference sparse solver
and the dense least-squares solve.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import Executor, compile_graph
from repro.factorgraph import (
    FactorGraph,
    Isotropic,
    U,
    Values,
    X,
    Y,
    solve,
)
from repro.factors import (
    BetweenFactor,
    DynamicsFactor,
    GPSFactor,
    PriorFactor,
    SmoothnessFactor,
)
from repro.geometry import Pose


def random_problem(seed: int, space: int, num_poses: int,
                   with_vectors: bool):
    """A random well-posed mixed graph."""
    rng = np.random.default_rng(seed)
    graph = FactorGraph()
    values = Values()

    poses = [Pose.random(space, rng) for _ in range(num_poses)]
    dim = poses[0].dim
    graph.add(PriorFactor(X(0), poses[0], Isotropic(dim, 0.1)))
    values.insert(X(0), poses[0].retract(0.05 * rng.standard_normal(dim)))
    for i in range(1, num_poses):
        graph.add(BetweenFactor(X(i), X(i - 1),
                                poses[i].ominus(poses[i - 1]),
                                Isotropic(dim, 0.2)))
        values.insert(X(i), poses[i].retract(0.05 * rng.standard_normal(dim)))
        if rng.random() < 0.5:
            graph.add(GPSFactor(X(i), poses[i].t
                                + 0.1 * rng.standard_normal(space),
                                Isotropic(space, 0.3)))

    if with_vectors:
        # A small control chain hanging off the side.
        a = np.eye(2) + 0.1 * rng.standard_normal((2, 2))
        b = rng.standard_normal((2, 1))
        graph.add(PriorFactor(Y(0), rng.standard_normal(2),
                              Isotropic(2, 0.5)))
        values.insert(Y(0), rng.standard_normal(2))
        graph.add(DynamicsFactor(Y(0), U(0), Y(1), a, b, Isotropic(2, 0.1)))
        values.insert(U(0), rng.standard_normal(1))
        values.insert(Y(1), rng.standard_normal(2))
        graph.add(PriorFactor(U(0), np.zeros(1), Isotropic(1, 1.0)))
        graph.add(SmoothnessFactor(Y(0), Y(1), dof=1, dt=0.5,
                                   noise=Isotropic(2, 0.4)))

    return graph, values, rng


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    space=st.sampled_from([2, 3]),
    num_poses=st.integers(2, 5),
    with_vectors=st.booleans(),
)
def test_compiled_step_matches_reference(seed, space, num_poses,
                                         with_vectors):
    graph, values, rng = random_problem(seed, space, num_poses, with_vectors)

    linear = graph.linearize(values)
    ordering = list(linear.keys())
    rng.shuffle(ordering)

    expected, _ = solve(linear, ordering)
    dense = linear.solve_dense()

    compiled = compile_graph(graph, values, ordering)
    registers = Executor().run(compiled.program)
    result = compiled.extract_solution(registers)

    assert set(result) == set(expected) == set(dense)
    for key in expected:
        assert np.allclose(result[key], expected[key], atol=1e-8)
        assert np.allclose(result[key], dense[key], atol=1e-6)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_compiled_program_structure_invariants(seed):
    """Dependency structure invariants hold on random programs."""
    graph, values, _ = random_problem(seed, 3, 3, True)
    compiled = compile_graph(graph, values)
    program = compiled.program
    deps = program.dependencies()
    # Every dependency points backwards (SSA).
    for uid, preds in deps.items():
        assert all(p < uid for p in preds)
    # Every non-const instruction's sources were produced by someone.
    produced = set()
    for instr in program.instructions:
        for s in instr.srcs:
            assert s in produced, f"{instr} reads unwritten {s}"
        produced.update(instr.dsts)
