"""Tests for the expression IR and lowering."""

import numpy as np
import pytest

from repro.errors import CompileError
from repro.compiler import (
    LogMap,
    Lowering,
    OMinus,
    OPlus,
    PoseConst,
    PoseVar,
    RotConst,
    RotRot,
    RotT,
    RotVar,
    RotVec,
    TransVar,
    VecAdd,
    VecConst,
    VecVar,
    pose_error,
    topological_order,
    vector_error,
)
from repro.factorgraph import X
from repro.geometry import Pose


class TestNodeValidation:
    def test_rot_var_dims(self):
        assert RotVar(X(0), 3).tangent_dim == 3
        assert RotVar(X(0), 2).tangent_dim == 1
        with pytest.raises(CompileError):
            RotVar(X(0), 4)

    def test_vec_var_dim(self):
        assert VecVar(X(0), 5).tangent_dim == 5
        with pytest.raises(CompileError):
            VecVar(X(0), 0)

    def test_rot_const_shape(self):
        RotConst("r", np.eye(3))
        with pytest.raises(CompileError):
            RotConst("r", np.eye(4))

    def test_vec_const_shape(self):
        with pytest.raises(CompileError):
            VecConst("v", np.eye(2))

    def test_rr_requires_matching_rotations(self):
        with pytest.raises(CompileError):
            RotRot(RotVar(X(0), 3), RotVar(X(1), 2))
        with pytest.raises(CompileError):
            RotRot(RotVar(X(0), 3), VecVar(X(1), 3))

    def test_rv_requires_matching_dims(self):
        with pytest.raises(CompileError):
            RotVec(RotVar(X(0), 3), VecVar(X(1), 2))

    def test_vp_validation(self):
        a, b = VecVar(X(0), 3), VecVar(X(1), 3)
        with pytest.raises(CompileError):
            VecAdd(a, VecVar(X(2), 2))
        with pytest.raises(CompileError):
            VecAdd(a, b, sign=2)

    def test_log_exp_types(self):
        assert LogMap(RotVar(X(0), 3)).n == 3
        assert LogMap(RotVar(X(0), 2)).n == 1
        with pytest.raises(CompileError):
            LogMap(VecVar(X(0), 3))

    def test_pose_var_dims(self):
        with pytest.raises(CompileError):
            PoseVar(X(0), 5)

    def test_pose_const_requires_pose(self):
        with pytest.raises(CompileError):
            PoseConst("z", np.zeros(3))

    def test_pose_ops_require_same_space(self):
        with pytest.raises(CompileError):
            OPlus(PoseVar(X(0), 2), PoseVar(X(1), 3))
        with pytest.raises(CompileError):
            OMinus(PoseVar(X(0), 2), PoseVar(X(1), 3))


class TestTopologicalOrder:
    def test_children_before_parents(self):
        a = RotVar(X(0), 3)
        b = RotT(a)
        c = RotRot(b, a)
        order = topological_order([c])
        assert order.index(a) < order.index(b) < order.index(c)

    def test_shared_nodes_visited_once(self):
        a = RotVar(X(0), 3)
        t = RotT(a)
        c = RotRot(t, t)
        order = topological_order([c])
        assert sum(1 for n in order if n is t) == 1

    def test_multiple_outputs(self):
        a = VecVar(X(0), 3)
        e1 = VecAdd(a, VecConst("m", np.zeros(3)), -1)
        e2 = VecAdd(a, VecConst("n", np.ones(3)), -1)
        order = topological_order([e1, e2])
        assert sum(1 for n in order if n is a) == 1


class TestLowering:
    def test_ominus_matches_equ4_structure(self):
        """Lowering (x_i (-) x_j) (-) z produces Equ. 4's operator tree."""
        xi, xj = PoseVar(X(1), 3), PoseVar(X(2), 3)
        z = PoseConst("z", Pose.identity(3))
        components = pose_error(OMinus(OMinus(xi, xj), z))
        e_o, e_p = components
        # e_o = Log(RR(RT(zR), RR(RT(Rj), Ri)))
        assert isinstance(e_o, LogMap)
        outer = e_o.r
        assert isinstance(outer, RotRot)
        assert isinstance(outer.a, RotT)       # dR^T
        inner = outer.b
        assert isinstance(inner, RotRot)
        assert isinstance(inner.a, RotT)       # Rj^T
        assert isinstance(inner.a.a, RotVar) and inner.a.a.key == X(2)
        assert isinstance(inner.b, RotVar) and inner.b.key == X(1)
        # e_p = RV(dR^T, VP(RV(Rj^T, ti - tj), -dt))
        assert isinstance(e_p, RotVec)

    def test_subexpression_sharing(self):
        """R_j^T is shared between the orientation and position errors."""
        xi, xj = PoseVar(X(1), 3), PoseVar(X(2), 3)
        z = PoseConst("z", Pose.identity(3))
        e_o, e_p = pose_error(OMinus(OMinus(xi, xj), z))
        nodes = topological_order([e_o, e_p])
        transposes = [n for n in nodes
                      if isinstance(n, RotT) and isinstance(n.a, RotVar)]
        assert len(transposes) == 1  # one shared Rj^T node

    def test_double_transpose_collapses(self):
        lowering = Lowering()
        a = RotVar(X(0), 3)
        t = lowering.transpose(a)
        assert lowering.transpose(t) is a

    def test_oplus_lowering(self):
        a, b = PoseVar(X(0), 3), PoseVar(X(1), 3)
        lowering = Lowering()
        rot, trans = lowering.lower_pose(OPlus(a, b))
        assert isinstance(rot, RotRot)
        assert isinstance(trans, VecAdd) and trans.sign == 1
        assert isinstance(trans.b, RotVec)

    def test_lower_pose_caches(self):
        a, b = PoseVar(X(0), 3), PoseVar(X(1), 3)
        expr = OMinus(a, b)
        lowering = Lowering()
        first = lowering.lower_pose(expr)
        second = lowering.lower_pose(expr)
        assert first[0] is second[0] and first[1] is second[1]

    def test_vector_error_validation(self):
        with pytest.raises(CompileError):
            vector_error()
        with pytest.raises(CompileError):
            vector_error(RotVar(X(0), 3))
        comps = vector_error(VecVar(X(0), 2))
        assert len(comps) == 1
