"""Property/fuzz tests: fused backend == interpreter on random programs.

The four applications exercise fixed program structures; grouping bugs
in the fused planner (wrong batch signature, bad slab indexing, operand
aliasing across members, fallback misclassification) could hide behind
them.  These tests generate random small programs per opcode group —
random shapes, group sizes 1–16, shared operands, cross-level
dependencies, interleaved emission order — and require the fused
backend's full register file to match the interpreter's bit for bit.

Matmul-family results (RR/RV/MM/MV, QR, BSUB) are allowed a documented
ulp-bounded escape (<= 4 ulp): the batched kernels issue the same BLAS
calls per slice on every platform we test, but a BLAS build that
reorders reductions for stacked inputs would be a platform property,
not a planner bug.  Elementwise/copy/stack groups have no reductions
and must always be exactly equal.
"""

import numpy as np
import pytest

from repro.compiler.executor import Executor
from repro.compiler.fused import FusedExecutor, build_plan, plan_for
from repro.compiler.isa import Opcode, Program

# Opcodes whose handlers reduce through BLAS: ulp-bounded escape.
_REDUCING = {Opcode.RR, Opcode.RV, Opcode.MM, Opcode.MV,
             Opcode.QR, Opcode.BSUB}

VEC_SHAPES = [(1,), (2,), (3,), (4,), (6,)]
MAT_SHAPES = [(2, 2), (3, 3), (2, 3), (3, 2), (4, 3), (1, 4)]


def run_both(program):
    """(interpreter registers, fused registers) for one program."""
    interp = Executor().run(program)
    fused = FusedExecutor().run(program)
    return interp, fused


def assert_registers_match(program, interp, fused):
    producer = {}
    for instr in program.instructions:
        for dst in instr.dsts:
            producer[dst] = instr
    assert set(interp) == set(fused)
    for name in interp:
        a, b = interp[name], fused[name]
        if np.array_equal(a, b):
            continue
        op = producer[name].op
        if op in _REDUCING:
            ulp = np.max(np.abs(a - b) / np.spacing(np.maximum(
                np.abs(a), np.abs(b)).clip(min=1e-300)))
            assert ulp <= 4.0, (
                f"{name} (op {op.value}) differs by {ulp:.1f} ulp"
            )
        else:
            raise AssertionError(
                f"{name} (op {op.value}) not bit-identical: "
                f"max abs diff {np.max(np.abs(a - b))}"
            )


class _ProgramFuzzer:
    """Emits layered random programs over the batchable opcode set.

    Each layer draws several same-opcode groups with random signatures
    and sizes; group members sample operands (with replacement — shared
    operands on purpose) from the pools of all earlier layers, creating
    cross-level dependencies.  Emission order is shuffled within a
    layer so the planner sees interleaved groups, not tidy runs.
    """

    def __init__(self, seed):
        self.rng = np.random.default_rng(seed)
        self.program = Program(algorithm="fuzz")
        # shape -> [register names], grown layer by layer
        self.pools = {}

    def const(self, shape):
        value = self.rng.standard_normal(shape)
        reg = self.program.new_register("c", shape)
        self.program.emit(Opcode.CONST, [], [reg],
                          meta={"value": value})
        self.pools.setdefault(shape, []).append(reg)
        return reg

    def pick(self, shape):
        pool = self.pools.get(shape)
        if not pool:
            return self.const(shape)
        return pool[int(self.rng.integers(len(pool)))]

    def _member(self, op, shapes, meta, out_shape):
        srcs = [self.pick(s) for s in shapes]
        dst = self.program.new_register("r", out_shape)
        return (op, srcs, [dst], meta, out_shape)

    def draw_group(self):
        rng = self.rng
        size = int(rng.integers(1, 17))
        op = rng.choice(["vp", "add", "copy", "rt", "rv", "mm", "mv",
                         "stack"])
        if op == "vp":
            shape = VEC_SHAPES[int(rng.integers(len(VEC_SHAPES)))]
            sign = int(rng.choice([1, -1, 2]))  # 2: fallback path
            spec = (Opcode.VP, [shape, shape], {"sign": sign}, shape)
        elif op == "add":
            shape = VEC_SHAPES[int(rng.integers(len(VEC_SHAPES)))]
            n = int(rng.integers(2, 5))
            spec = (Opcode.ADD, [shape] * n, {}, shape)
        elif op == "copy":
            menu = VEC_SHAPES + MAT_SHAPES
            shape = menu[int(rng.integers(len(menu)))]
            spec = (Opcode.COPY, [shape],
                    {"negate": bool(rng.random() < 0.5)}, shape)
        elif op == "rt":
            if rng.random() < 0.3:
                shape = VEC_SHAPES[int(rng.integers(len(VEC_SHAPES)))]
                spec = (Opcode.RT, [shape], {}, shape)
            else:
                shape = MAT_SHAPES[int(rng.integers(len(MAT_SHAPES)))]
                spec = (Opcode.RT, [shape], {}, shape[::-1])
        elif op == "rv":
            d = int(rng.integers(2, 5))
            spec = (Opcode.RV, [(d, d), (d,)], {}, (d,))
        elif op == "mv":
            m, k = int(rng.integers(1, 5)), int(rng.integers(1, 5))
            spec = (Opcode.MV, [(m, k), (k,)],
                    {"negate": bool(rng.random() < 0.5)}, (m,))
        elif op == "mm":
            m, k, n = (int(rng.integers(1, 5)) for _ in range(3))
            if rng.random() < 0.3:
                spec = (Opcode.MM, [(m, k), (k,)],
                        {"negate": bool(rng.random() < 0.5),
                         "b_as_column": True}, (m, 1))
            else:
                spec = (Opcode.MM, [(m, k), (k, n)],
                        {"negate": bool(rng.random() < 0.5)}, (m, n))
        else:  # stack
            axis = int(rng.choice([0, 1]))
            if axis == 0 and rng.random() < 0.5:
                parts = [VEC_SHAPES[int(rng.integers(len(VEC_SHAPES)))]
                         for _ in range(int(rng.integers(2, 5)))]
                total = sum(s[0] for s in parts)
                spec = (Opcode.STACK, parts, {"axis": 0}, (total,))
            elif axis == 0:
                cols = int(rng.integers(1, 5))
                parts, rows = [], 0
                for _ in range(int(rng.integers(2, 5))):
                    if rng.random() < 0.4:
                        parts.append((cols,))
                        rows += 1
                    else:
                        r = int(rng.integers(1, 4))
                        parts.append((r, cols))
                        rows += r
                spec = (Opcode.STACK, parts, {"axis": 0}, (rows, cols))
            else:
                rows = int(rng.integers(1, 5))
                parts, cols = [], 0
                for _ in range(int(rng.integers(2, 5))):
                    if rng.random() < 0.4:
                        parts.append((rows,))
                        cols += 1
                    else:
                        c = int(rng.integers(1, 4))
                        parts.append((rows, c))
                        cols += c
                spec = (Opcode.STACK, parts, {"axis": 1}, (rows, cols))
        opcode, shapes, meta, out_shape = spec
        return [self._member(opcode, shapes, dict(meta), out_shape)
                for _ in range(size)]

    def build(self, layers=3, groups_per_layer=3):
        for _ in range(layers):
            members = []
            for _ in range(int(self.rng.integers(
                    1, groups_per_layer + 1))):
                members.extend(self.draw_group())
            self.rng.shuffle(members)
            emitted = []
            for op, srcs, dsts, meta, out_shape in members:
                self.program.emit(op, srcs, dsts, meta=meta)
                emitted.append((dsts[0], out_shape))
            # Results join the pools only after the whole layer is
            # emitted, so same-layer groups never consume each other.
            for dst, shape in emitted:
                self.pools.setdefault(shape, []).append(dst)
        return self.program


@pytest.mark.parametrize("seed", range(25))
def test_random_layered_programs(seed):
    program = _ProgramFuzzer(seed).build()
    interp, fused = run_both(program)
    assert_registers_match(program, interp, fused)


@pytest.mark.parametrize("size", [1, 2, 3, 7, 16])
@pytest.mark.parametrize("op", ["vp", "add", "copy", "mv", "mm",
                                "stack"])
def test_uniform_group_sizes(op, size):
    """Every batchable opcode, at group sizes spanning the fallback
    boundary (1 is below BATCH_MIN) through wide batches."""
    rng = np.random.default_rng(hash((op, size)) % (2 ** 32))
    program = Program(algorithm="uniform")

    def const(shape):
        reg = program.new_register("c", shape)
        program.emit(Opcode.CONST, [], [reg],
                     meta={"value": rng.standard_normal(shape)})
        return reg

    shared = const((3,))  # one operand shared by every member
    for _ in range(size):
        if op == "vp":
            dst = program.new_register("r", (3,))
            program.emit(Opcode.VP, [const((3,)), shared], [dst],
                         meta={"sign": -1})
        elif op == "add":
            dst = program.new_register("r", (3,))
            program.emit(Opcode.ADD,
                         [const((3,)), shared, const((3,))], [dst])
        elif op == "copy":
            dst = program.new_register("r", (3,))
            program.emit(Opcode.COPY, [shared], [dst],
                         meta={"negate": True})
        elif op == "mv":
            dst = program.new_register("r", (2,))
            program.emit(Opcode.MV, [const((2, 3)), shared], [dst],
                         meta={"negate": False})
        elif op == "mm":
            dst = program.new_register("r", (2, 2))
            program.emit(Opcode.MM, [const((2, 3)), const((3, 2))],
                         [dst])
        else:  # stack
            dst = program.new_register("r", (6,))
            program.emit(Opcode.STACK, [const((3,)), shared], [dst],
                         meta={"axis": 0})
    interp, fused = run_both(program)
    assert_registers_match(program, interp, fused)


def test_mixed_signatures_one_level_split_into_groups():
    """Same opcode, different shapes on one level: separate batches,
    all still bit-identical."""
    rng = np.random.default_rng(7)
    program = Program(algorithm="mixed")
    for shape in [(2,), (3,), (2,), (4,), (3,), (2,)]:
        a = program.new_register("c", shape)
        program.emit(Opcode.CONST, [], [a],
                     meta={"value": rng.standard_normal(shape)})
        b = program.new_register("c", shape)
        program.emit(Opcode.CONST, [], [b],
                     meta={"value": rng.standard_normal(shape)})
        dst = program.new_register("r", shape)
        program.emit(Opcode.VP, [a, b], [dst], meta={"sign": 1})
    plan = build_plan(program)
    # Three distinct shapes -> three signature groups (sizes 3, 2, 1).
    sizes = sorted(s.size for s in plan.steps)
    assert sizes == [1, 2, 3]
    interp, fused = run_both(program)
    assert_registers_match(program, interp, fused)


def test_chained_groups_consume_producer_slabs():
    """Level-2 groups reading level-1 outputs exercise the slab-gather
    paths (whole-slab, permuted index, register-file fallback)."""
    rng = np.random.default_rng(11)
    program = Program(algorithm="chain")
    consts = []
    for _ in range(8):
        reg = program.new_register("c", (3,))
        program.emit(Opcode.CONST, [], [reg],
                     meta={"value": rng.standard_normal((3,))})
        consts.append(reg)
    level1 = []
    for i in range(8):
        dst = program.new_register("r", (3,))
        program.emit(Opcode.VP, [consts[i], consts[(i + 1) % 8]],
                     [dst], meta={"sign": 1})
        level1.append(dst)
    # Whole-slab order, reversed order, and a const-mixed group.
    for srcs in (list(level1), list(reversed(level1))):
        for i in range(0, 8, 2):
            dst = program.new_register("r", (3,))
            program.emit(Opcode.VP, [srcs[i], srcs[i + 1]], [dst],
                         meta={"sign": -1})
    for i in range(4):
        dst = program.new_register("r", (3,))
        program.emit(Opcode.ADD, [level1[i], consts[i], level1[7 - i]],
                     [dst])
    interp, fused = run_both(program)
    assert_registers_match(program, interp, fused)


@pytest.mark.parametrize("structure_seed", range(8))
def test_random_compiled_problems_bit_identical(structure_seed):
    """End-to-end fuzz over *compiled* random graphs: QR fronts, BSUB
    chains, EMBED fallbacks, and whitening stacks with randomized
    structure — the full register file must match bit for bit."""
    from repro.compiler import cached_compile_graph
    from tests.diff.util import random_problem

    graph, values = random_problem(structure_seed,
                                   structure_seed + 9000)
    compiled = cached_compile_graph(graph, values, cache=None)
    interp, fused = run_both(compiled.program)
    assert_registers_match(compiled.program, interp, fused)


def test_plan_cached_per_program_structure():
    program = _ProgramFuzzer(99).build()
    plan_a = plan_for(program)
    plan_b = plan_for(program)
    assert plan_a is plan_b
