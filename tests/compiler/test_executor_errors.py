"""Error-path and edge-case tests for the functional ISA executor."""

import numpy as np
import pytest

from repro.errors import CompileError, ExecutionError
from repro.compiler import Executor, Opcode, Program


def program_with(op, srcs_values, meta=None, dst_shape=(1,)):
    """Build a one-instruction program with CONST-fed sources."""
    program = Program()
    srcs = []
    for value in srcs_values:
        value = np.asarray(value, dtype=float)
        reg = program.new_register("c", value.shape)
        program.emit(Opcode.CONST, [], [reg], {"value": value})
        srcs.append(reg)
    dst = program.new_register("d", dst_shape)
    program.emit(op, srcs, [dst], meta or {})
    return program, dst


class TestRegisterFile:
    def test_read_unwritten_register(self):
        with pytest.raises(ExecutionError):
            Executor().read("ghost")

    def test_emit_checks_source_defined(self):
        program = Program()
        with pytest.raises(CompileError):
            program.emit(Opcode.RT, ["missing"], ["out"])

    def test_unknown_handler(self):
        from repro.compiler.isa import Instruction

        class FakeOp:
            value = "teleport"

        executor = Executor()
        instr = Instruction(0, Opcode.RT, [], ["x"])
        instr.op = FakeOp()  # force an op without a handler
        with pytest.raises(ExecutionError):
            executor.execute(instr)


class TestOpcodeValidation:
    def test_log_rejects_non_rotation_shape(self):
        program, _ = program_with(Opcode.LOG, [np.zeros((4, 4))])
        with pytest.raises(ExecutionError):
            Executor().run(program)

    def test_exp_rejects_bad_vector(self):
        program, _ = program_with(Opcode.EXP, [np.zeros(2)])
        with pytest.raises(ExecutionError):
            Executor().run(program)

    def test_skew_rejects_bad_dim(self):
        program, _ = program_with(Opcode.SKEW, [np.zeros(4)])
        with pytest.raises(ExecutionError):
            Executor().run(program)

    def test_jr_rejects_bad_dim(self):
        program, _ = program_with(Opcode.JR, [np.zeros(2)])
        with pytest.raises(ExecutionError):
            Executor().run(program)
        program, _ = program_with(Opcode.JRINV, [np.zeros(2)])
        with pytest.raises(ExecutionError):
            Executor().run(program)

    def test_stack_rejects_bad_axis(self):
        program, _ = program_with(Opcode.STACK, [np.zeros(2), np.zeros(2)],
                                  {"axis": 2})
        with pytest.raises(ExecutionError):
            Executor().run(program)


class TestOpcodeSemantics:
    def run_one(self, op, srcs, meta=None, dst_shape=(1,)):
        program, dst = program_with(op, srcs, meta, dst_shape)
        return Executor().run(program)[dst]

    def test_vp_subtraction(self):
        out = self.run_one(Opcode.VP, [np.array([3.0]), np.array([1.0])],
                           {"sign": -1})
        assert np.allclose(out, [2.0])

    def test_mm_negate_and_column(self):
        out = self.run_one(
            Opcode.MM, [np.eye(2), np.array([1.0, 2.0])],
            {"negate": True, "b_as_column": True}, dst_shape=(2, 1))
        assert np.allclose(out, [[-1.0], [-2.0]])

    def test_mv_negate(self):
        out = self.run_one(Opcode.MV, [2.0 * np.eye(2), np.ones(2)],
                           {"negate": True}, dst_shape=(2,))
        assert np.allclose(out, [-2.0, -2.0])

    def test_copy_negate(self):
        out = self.run_one(Opcode.COPY, [np.array([1.0, -2.0])],
                           {"negate": True}, dst_shape=(2,))
        assert np.allclose(out, [-1.0, 2.0])

    def test_add_many_sources(self):
        out = self.run_one(Opcode.ADD,
                           [np.ones(2), np.ones(2), np.ones(2)],
                           dst_shape=(2,))
        assert np.allclose(out, [3.0, 3.0])

    def test_stack_axis0_matrices(self):
        out = self.run_one(Opcode.STACK, [np.ones((1, 2)), np.zeros((2, 2))],
                           {"axis": 0}, dst_shape=(3, 2))
        assert out.shape == (3, 2)

    def test_skew_2d_perp(self):
        out = self.run_one(Opcode.SKEW, [np.array([1.0, 2.0])],
                           dst_shape=(2,))
        assert np.allclose(out, [-2.0, 1.0])

    def test_log_exp_2d(self):
        rot = self.run_one(Opcode.EXP, [np.array([0.5])], dst_shape=(2, 2))
        assert np.allclose(rot[0, 0], np.cos(0.5))
        back = self.run_one(Opcode.LOG, [rot], dst_shape=(1,))
        assert np.allclose(back, [0.5])

    def test_bsub_singular_rejected(self):
        program = Program()
        cond = program.new_register("c", (2, 3))
        program.emit(Opcode.CONST, [], [cond],
                     {"value": np.zeros((2, 3))})
        sol = program.new_register("s", (2,))
        program.emit(Opcode.BSUB, [cond], [sol],
                     {"frontal_dim": 2, "parents": []})
        with pytest.raises(ExecutionError):
            Executor().run(program)

    def test_write_count_mismatch(self):
        from repro.compiler.isa import Instruction

        executor = Executor()
        instr = Instruction(0, Opcode.CONST, [], ["a", "b"],
                            {"value": np.zeros(2)})
        with pytest.raises(ExecutionError):
            executor.execute(instr)
