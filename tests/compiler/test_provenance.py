"""Tests for provenance threading: emission, merging, preservation."""

import numpy as np
import pytest

from repro.compiler import (
    Opcode,
    Program,
    Provenance,
    STAGE_BACKSUB,
    STAGE_ELIMINATE,
    compile_graph,
)
from repro.compiler.passes import (
    common_subexpression_elimination,
    dead_code_elimination,
    optimize_program,
)
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, GPSFactor, PriorFactor
from repro.geometry import Pose
from repro.sim.pipeline import replicate_frames


def star_problem(num_factors=4, seed=0):
    """Many factors adjacent to one pose: maximal Exp(phi) sharing."""
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 0.1))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(num_factors):
        graph.add(BetweenFactor(X(i + 1), X(0),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
        graph.add(GPSFactor(X(i + 1), rng.standard_normal(3),
                            Isotropic(3, 0.5)))
    return graph, values


@pytest.fixture(scope="module")
def compiled():
    graph, values = star_problem()
    return compile_graph(graph, values)


class TestProvenanceRecord:
    def test_merge_unions_factors_and_variables(self):
        a = Provenance(factors=((0, "PriorFactor"),), variables=("x0",),
                       stage="construct.error", node_kind="RotRot")
        b = Provenance(factors=((2, "GPSFactor"), (0, "PriorFactor")),
                       variables=("x1",))
        merged = a.merged_with(b)
        assert merged.factors == ((0, "PriorFactor"), (2, "GPSFactor"))
        assert merged.variables == ("x0", "x1")
        assert merged.stage == "construct.error"
        assert merged.node_kind == "RotRot"

    def test_dict_round_trip(self):
        p = Provenance(factors=((1, "GPSFactor"),), variables=("x1",),
                       stage="construct.jacobian", node_kind="GenMatVec",
                       origin="pose.rot")
        assert Provenance.from_dict(p.to_dict()) == p

    def test_empty_record(self):
        assert Provenance().is_empty()
        assert not Provenance(stage="backsub").is_empty()


class TestEmission:
    def test_every_instruction_is_tagged(self, compiled):
        program = compiled.program
        assert program.instructions
        for instr in program.instructions:
            assert instr.provenance is not None, (
                f"untagged instruction #{instr.uid} {instr.op}"
            )
            assert not instr.provenance.is_empty()

    def test_factor_work_names_its_factor(self, compiled):
        graph, _ = star_problem()
        factor_tags = {
            instr.provenance.factors
            for instr in compiled.program.instructions
            if instr.provenance.factors
        }
        seen_ids = {fid for tags in factor_tags for fid, _ in tags}
        assert seen_ids == set(range(len(graph.factors)))
        seen_types = {ftype for tags in factor_tags for _, ftype in tags}
        assert seen_types == {"PriorFactor", "BetweenFactor", "GPSFactor"}

    def test_qr_and_bsub_carry_variable_and_stage(self, compiled):
        qrs = [i for i in compiled.program.instructions
               if i.op is Opcode.QR]
        bsubs = [i for i in compiled.program.instructions
                 if i.op is Opcode.BSUB]
        assert qrs and bsubs
        for instr in qrs:
            assert instr.provenance.stage == STAGE_ELIMINATE
            assert instr.provenance.variables
        for instr in bsubs:
            assert instr.provenance.stage == STAGE_BACKSUB
            assert instr.provenance.variables

    def test_stages_cover_the_pipeline(self, compiled):
        stages = {i.provenance.stage
                  for i in compiled.program.instructions}
        assert {"construct.error", "construct.jacobian",
                "construct.whiten", "eliminate", "backsub"} <= stages

    def test_scope_composition_and_restoration(self):
        program = Program()
        with program.provenance(factor_id=3, factor_type="TestFactor"):
            with program.provenance(stage="construct.error",
                                    node_kind="RotRot"):
                inner = program.current_provenance()
            outer = program.current_provenance()
        assert inner.factors == ((3, "TestFactor"),)
        assert inner.stage == "construct.error"
        assert inner.node_kind == "RotRot"
        assert outer.factors == ((3, "TestFactor"),)
        assert outer.stage == ""
        assert program.current_provenance() is None


class TestPassPreservation:
    def test_cse_merges_multi_factor_provenance(self, compiled):
        """A CSE survivor accumulates every folded factor's identity."""
        after = common_subexpression_elimination(compiled.program)
        multi = [i for i in after.instructions
                 if i.provenance is not None
                 and len(i.provenance.factors) > 1]
        assert multi, "expected CSE to create shared multi-factor work"
        # The star center's Exp(phi_x0) serves the prior and every
        # between factor: its survivor must name several factor types.
        types = {frozenset(t for _, t in i.provenance.factors)
                 for i in multi}
        assert any({"PriorFactor", "BetweenFactor"} <= ts for ts in types)

    def test_cse_keeps_all_instructions_tagged(self, compiled):
        after = common_subexpression_elimination(compiled.program)
        assert all(i.provenance is not None for i in after.instructions)

    def test_dce_preserves_provenance(self, compiled):
        after = dead_code_elimination(compiled.program)
        assert after.instructions
        assert all(i.provenance is not None for i in after.instructions)

    def test_optimized_program_keeps_full_coverage(self, compiled):
        after = optimize_program(compiled.program)
        assert all(not i.provenance.is_empty()
                   for i in after.instructions)


class TestCloningPreservation:
    def test_subset_by_algorithm_preserves_provenance(self, compiled):
        program = compiled.program
        algo = program.instructions[0].algorithm
        subset = program.subset_by_algorithm(algo)
        assert subset.instructions
        assert all(i.provenance is not None for i in subset.instructions)

    def test_extend_preserves_provenance(self, compiled):
        merged = Program(algorithm="merged")
        merged.extend(compiled.program)
        assert all(i.provenance is not None
                   for i in merged.instructions)

    def test_replicate_frames_preserves_provenance(self, compiled):
        replicated = replicate_frames(compiled.program, 2)
        assert all(i.provenance is not None
                   for i in replicated.instructions)
