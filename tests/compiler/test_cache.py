"""Tests for the structure-keyed compilation cache (compile-once/bind-many).

Covers cache keying edge cases (same structure/different values hits;
noise-dimension, added-factor, ordering, variable-dimension changes
miss), provenance preservation across rebind, the obs counters, LRU
eviction, and the process-wide enable toggle.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.compiler import (
    CompilationCache,
    cache_enabled,
    cached_compile_graph,
    clear_default_cache,
    compile_graph,
    default_cache,
    graph_structure,
    set_cache_enabled,
    structural_fingerprint,
)
from repro.compiler.isa import Opcode
from repro.factorgraph import FactorGraph, Isotropic, Values, X, Y
from repro.factors import BetweenFactor, GPSFactor, PriorFactor
from repro.geometry import Pose


def chain(value_seed=0, num_poses=3, space=3, sigma=0.2, with_gps=False):
    rng = np.random.default_rng(value_seed)
    graph = FactorGraph()
    values = Values()
    poses = [Pose.random(space, rng) for _ in range(num_poses)]
    dim = poses[0].dim
    graph.add(PriorFactor(X(0), poses[0], Isotropic(dim, 0.1)))
    values.insert(X(0), poses[0].retract(0.05 * rng.standard_normal(dim)))
    for i in range(1, num_poses):
        graph.add(BetweenFactor(X(i), X(i - 1),
                                poses[i].ominus(poses[i - 1]),
                                Isotropic(dim, sigma)))
        values.insert(X(i), poses[i].retract(0.05 * rng.standard_normal(dim)))
    if with_gps:
        graph.add(GPSFactor(X(1), poses[1].t, Isotropic(space, 0.3)))
    return graph, values


class TestKeying:
    def test_same_structure_different_values_hits(self):
        g1, v1 = chain(0)
        g2, v2 = chain(99)
        assert structural_fingerprint(g1, v1) == structural_fingerprint(g2, v2)
        cache = CompilationCache()
        cache.compile(g1, v1)
        cache.compile(g2, v2)
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_different_noise_sigma_same_structure_hits(self):
        # Noise *values* are numerics, not structure.
        g1, v1 = chain(0, sigma=0.2)
        g2, v2 = chain(0, sigma=0.9)
        assert structural_fingerprint(g1, v1) == structural_fingerprint(g2, v2)

    def test_added_factor_misses(self):
        g1, v1 = chain(0)
        g2, v2 = chain(0, with_gps=True)
        assert structural_fingerprint(g1, v1) != structural_fingerprint(g2, v2)

    def test_changed_variable_dims_miss(self):
        g2d = chain(0, space=2)
        g3d = chain(0, space=3)
        assert structural_fingerprint(*g2d) != structural_fingerprint(*g3d)

    def test_changed_ordering_misses(self):
        graph, values = chain(0)
        keys = list(graph.keys())
        fp_default = structural_fingerprint(graph, values)
        fp_forward = structural_fingerprint(graph, values, keys)
        fp_reverse = structural_fingerprint(graph, values, keys[::-1])
        assert len({fp_default, fp_forward, fp_reverse}) == 3

    def test_changed_noise_dims_miss(self):
        graph, values = chain(0)
        g2 = FactorGraph()
        for f in graph.factors:
            g2.add(f)
        g2.add(PriorFactor(Y(0), np.zeros(2), Isotropic(2, 1.0)))
        v2 = values.copy()
        v2.insert(Y(0), np.zeros(2))
        assert structural_fingerprint(graph, values) \
            != structural_fingerprint(g2, v2)

    def test_extra_tokens_partition_the_cache(self):
        graph, values = chain(0)
        assert structural_fingerprint(graph, values, extra=("8bit",)) \
            != structural_fingerprint(graph, values, extra=("16bit",))


class TestRebind:
    def test_rebound_values_are_fresh(self):
        g1, v1 = chain(0)
        g2, v2 = chain(42)
        cache = CompilationCache()
        cache.compile(g1, v1)
        rebound = cache.compile(g2, v2)
        cold = compile_graph(g2, v2)
        by_uid = {i.uid: i for i in cold.program.instructions}
        checked = 0
        for instr in rebound.program.instructions:
            if instr.op is Opcode.CONST:
                assert np.array_equal(instr.meta["value"],
                                      by_uid[instr.uid].meta["value"])
                checked += 1
        assert checked > 0

    def test_provenance_preserved_across_rebind(self):
        g1, v1 = chain(0)
        g2, v2 = chain(7)
        cache = CompilationCache()
        template = cache.compile(g1, v1)
        rebound = cache.compile(g2, v2)
        tagged = 0
        for got, ref in zip(rebound.program.instructions,
                            template.program.instructions):
            assert (got.provenance is None) == (ref.provenance is None)
            if got.provenance is not None:
                assert got.provenance.factor_ids == ref.provenance.factor_ids
                assert got.provenance.stage == ref.provenance.stage
                tagged += 1
        assert tagged > 0

    def test_default_ordering_reused_from_template(self):
        g1, v1 = chain(0, num_poses=5)
        g2, v2 = chain(3, num_poses=5)
        cache = CompilationCache()
        template = cache.compile(g1, v1)
        rebound = cache.compile(g2, v2)
        assert rebound.ordering == template.ordering
        assert rebound.ordering == compile_graph(g2, v2).ordering


class TestCachePolicy:
    def test_lru_eviction(self):
        cache = CompilationCache(max_entries=2)
        problems = [chain(0, num_poses=n) for n in (2, 3, 4)]
        for g, v in problems:
            cache.compile(g, v)
        assert len(cache) == 2
        # Oldest (2-pose) structure was evicted: compiling it again misses.
        cache.compile(*problems[0])
        assert cache.stats()["misses"] == 4

    def test_clear_resets_stats(self):
        cache = CompilationCache()
        cache.compile(*chain(0))
        cache.clear()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_counters_emitted_when_observing(self):
        obs.enable()
        try:
            obs.collector().drain()
            cache = CompilationCache()
            cache.compile(*chain(0))
            cache.compile(*chain(5))
            snapshot = obs.collector().drain()
        finally:
            obs.disable()
        assert snapshot.counters["compiler.cache.miss"] == 1
        assert snapshot.counters["compiler.cache.hit"] == 1
        assert snapshot.counters["compiler.cache.rebind_ns"] > 0


class TestToggle:
    def test_set_cache_enabled_round_trip(self):
        previous = set_cache_enabled(False)
        try:
            assert not cache_enabled()
            clear_default_cache()
            cached_compile_graph(*chain(0))
            cached_compile_graph(*chain(1))
            assert default_cache().stats()["hits"] == 0
        finally:
            set_cache_enabled(previous)

    def test_default_cache_used_when_enabled(self):
        previous = set_cache_enabled(True)
        try:
            clear_default_cache()
            cached_compile_graph(*chain(0))
            cached_compile_graph(*chain(1))
            assert default_cache().stats() == {
                "hits": 1, "misses": 1, "entries": 1,
            }
        finally:
            set_cache_enabled(previous)
            clear_default_cache()

    def test_explicit_cache_overrides_toggle(self):
        previous = set_cache_enabled(False)
        try:
            cache = CompilationCache()
            cached_compile_graph(*chain(0), cache=cache)
            cached_compile_graph(*chain(1), cache=cache)
            assert cache.stats()["hits"] == 1
        finally:
            set_cache_enabled(previous)

    def test_max_entries_validation(self):
        with pytest.raises(ValueError):
            CompilationCache(max_entries=0)


class TestStructure:
    def test_fingerprint_is_stable_hex(self):
        graph, values = chain(0)
        fp = structural_fingerprint(graph, values)
        assert fp == structural_fingerprint(graph, values)
        assert len(fp) == 64
        int(fp, 16)

    def test_nodes_for_rejects_embedded_factors(self):
        from repro.errors import CompileError
        from repro.factors import CameraFactor, PinholeCamera

        graph, values = chain(0)
        g2 = FactorGraph()
        for f in graph.factors:
            g2.add(f)
        cam = PinholeCamera()
        values.insert(Y(0), np.array([0.2, -0.3, 6.0]))
        g2.add(CameraFactor(X(0), Y(0), np.array([1.0, 1.0]), cam))
        structure = graph_structure(g2, values)
        with pytest.raises(CompileError):
            structure.nodes_for(len(g2.factors) - 1)

    def test_embedded_factor_graphs_cache_and_rebind(self):
        from repro.factors import CameraFactor, PinholeCamera

        def slam(value_seed):
            rng = np.random.default_rng(value_seed)
            graph, values = chain(value_seed)
            cam = PinholeCamera()
            landmark = np.array([0.5, -0.3, 6.0]) \
                + 0.1 * rng.standard_normal(3)
            values.insert(Y(0), landmark)
            g2 = FactorGraph()
            for f in graph.factors:
                g2.add(f)
            g2.add(CameraFactor(X(0), Y(0), np.array([320.0, 240.0]), cam))
            g2.add(PriorFactor(Y(0), landmark, Isotropic(3, 1.0)))
            return g2, values

        cache = CompilationCache()
        cache.compile(*slam(0))
        g, v = slam(9)
        rebound = cache.compile(g, v)
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}
        cold = compile_graph(g, v)
        embeds = [i for i in rebound.program.instructions
                  if i.op is Opcode.EMBED]
        assert embeds and all(i.meta["values"] is v for i in embeds)
        from repro.compiler import Executor

        got = rebound.extract_solution(Executor().run(rebound.program))
        want = cold.extract_solution(Executor().run(cold.program))
        for key in want:
            assert np.allclose(got[key], want[key], atol=1e-10)
