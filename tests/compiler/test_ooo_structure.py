"""Tests for the Sec. 6.3 out-of-order structure claims.

The compiled dependency graph must expose exactly the reordering freedom
the paper describes: independent variable eliminations (no shared adjacent
factors) and sibling back substitutions (same parent) carry no mutual
dependencies.
"""

import numpy as np

from repro.compiler import Opcode, compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X, Y
from repro.factors import CameraFactor, IMUFactor, PinholeCamera, PriorFactor
from repro.geometry import Pose


def fig4_style_problem():
    """Two landmarks observed from disjoint poses, like y1/y2 in Fig. 5."""
    camera = PinholeCamera()
    rng = np.random.default_rng(0)
    poses = [Pose.identity(3)]
    for _ in range(3):
        poses.append(poses[-1].compose(
            Pose(np.zeros(3), np.array([0.4, 0.0, 0.0]))))
    landmarks = [np.array([0.3, -0.2, 5.0]), np.array([1.5, 0.2, 6.0])]

    graph = FactorGraph([PriorFactor(X(0), poses[0], Isotropic(6, 1e-3))])
    values = Values({X(0): poses[0]})
    for i in range(3):
        graph.add(IMUFactor(X(i), X(i + 1), poses[i + 1].ominus(poses[i])))
        values.insert(X(i + 1),
                      poses[i + 1].retract(0.02 * rng.standard_normal(6)))
    # y0 seen only from x0/x1; y1 only from x2/x3 -> no common factors.
    for j, (landmark, views) in enumerate(zip(landmarks,
                                              [(0, 1), (2, 3)])):
        values.insert(Y(j), landmark + 0.05 * rng.standard_normal(3))
        for i in views:
            pixel = camera.project(
                poses[i].rotation.T @ (landmark - poses[i].t))
            graph.add(CameraFactor(X(i), Y(j), pixel, camera))
    return graph, values


def transitive_dependents(program, root_uid):
    deps = program.dependencies()
    children = {}
    for uid, preds in deps.items():
        for p in preds:
            children.setdefault(p, set()).add(uid)
    seen = set()
    stack = [root_uid]
    while stack:
        uid = stack.pop()
        for child in children.get(uid, ()):
            if child not in seen:
                seen.add(child)
                stack.append(child)
    return seen


class TestEliminationReordering:
    def test_independent_landmark_eliminations_have_no_dependency(self):
        """Variables without shared adjacent factors eliminate OoO."""
        graph, values = fig4_style_problem()
        ordering = [Y(0), Y(1), X(0), X(1), X(2), X(3)]
        compiled = compile_graph(graph, values, ordering)
        qrs = {i.meta["variable"]: i for i in compiled.program
               if i.op is Opcode.QR}
        y0_downstream = transitive_dependents(compiled.program,
                                              qrs["y0"].uid)
        assert qrs["y1"].uid not in y0_downstream
        y1_downstream = transitive_dependents(compiled.program,
                                              qrs["y1"].uid)
        assert qrs["y0"].uid not in y1_downstream

    def test_chained_pose_eliminations_are_dependent(self):
        """Consecutive poses share factors: their QRs must serialize."""
        graph, values = fig4_style_problem()
        ordering = [Y(0), Y(1), X(0), X(1), X(2), X(3)]
        compiled = compile_graph(graph, values, ordering)
        qrs = {i.meta["variable"]: i for i in compiled.program
               if i.op is Opcode.QR}
        x0_downstream = transitive_dependents(compiled.program,
                                              qrs["x0"].uid)
        assert qrs["x1"].uid in x0_downstream


class TestBackSubstitutionReordering:
    def test_sibling_backsubs_independent(self):
        """Variables sharing the same parent back-substitute OoO."""
        graph, values = fig4_style_problem()
        ordering = [Y(0), Y(1), X(0), X(1), X(2), X(3)]
        compiled = compile_graph(graph, values, ordering)
        bsubs = {i.meta["variable"]: i for i in compiled.program
                 if i.op is Opcode.BSUB}
        # y0 and y1 both depend only on pose solutions, not each other.
        y0_downstream = transitive_dependents(compiled.program,
                                              bsubs["y0"].uid)
        assert bsubs["y1"].uid not in y0_downstream

    def test_child_backsub_depends_on_parent(self):
        """Fig. 6: solving x2 requires the solution of x3."""
        graph, values = fig4_style_problem()
        ordering = [Y(0), Y(1), X(0), X(1), X(2), X(3)]
        compiled = compile_graph(graph, values, ordering)
        bsubs = {i.meta["variable"]: i for i in compiled.program
                 if i.op is Opcode.BSUB}
        deps = compiled.program.dependencies()
        # x2 was eliminated before x3, so x3 is x2's parent.
        assert bsubs["x3"].uid in deps[bsubs["x2"].uid]
