"""Tests for Levenberg-Marquardt."""

import numpy as np
import pytest

from repro.factorgraph import (
    FactorGraph,
    FunctionFactor,
    GaussianFactorGraph,
    Unit,
    Values,
    X,
    prior_on_vector,
)
from repro.optim import LevenbergParams, damped_graph, levenberg_marquardt


class TestDampedGraph:
    def test_adds_one_prior_row_per_variable(self):
        g = FactorGraph([
            prior_on_vector(X(0), np.array([1.0, 1.0])),
            prior_on_vector(X(1), np.array([0.0])),
        ])
        v = Values({X(0): np.zeros(2), X(1): np.zeros(1)})
        linear = g.linearize(v)
        damped = damped_graph(linear, lam=4.0)
        assert len(damped) == len(linear) + 2
        # The damping block is sqrt(lambda) I.
        extra = damped.factors[-1]
        assert np.allclose(np.abs(extra.block(extra.keys[0])),
                           2.0 * np.eye(extra.rows))

    def test_zero_lambda_is_noop_rows(self):
        g = FactorGraph([prior_on_vector(X(0), np.array([1.0]))])
        linear = g.linearize(Values({X(0): np.zeros(1)}))
        damped = damped_graph(linear, lam=0.0)
        sol = damped.solve_dense()
        assert np.allclose(sol[X(0)], [1.0])


class TestLevenbergMarquardt:
    def test_matches_gn_on_linear_problem(self):
        g = FactorGraph([prior_on_vector(X(0), np.array([2.0, -3.0]))])
        result = levenberg_marquardt(g, Values({X(0): np.zeros(2)}))
        assert result.converged
        assert np.allclose(result.values.vector(X(0)), [2.0, -3.0], atol=1e-6)

    def test_handles_strong_nonlinearity(self):
        # Rosenbrock-style residuals where plain GN overshoots from far away.
        def fn(values):
            x = values.vector(X(0))
            return np.array([10.0 * (x[1] - x[0] ** 2), 1.0 - x[0]])

        g = FactorGraph([FunctionFactor([X(0)], Unit(2), fn)])
        result = levenberg_marquardt(
            g, Values({X(0): np.array([-1.5, 2.0])}),
            LevenbergParams(max_iterations=100),
        )
        assert result.final_error < 1e-10
        assert np.allclose(result.values.vector(X(0)), [1.0, 1.0], atol=1e-4)

    def test_error_never_increases(self):
        def fn(values):
            x = values.vector(X(0))
            return np.array([np.sin(x[0]) + 0.5 * x[0] - 1.0])

        g = FactorGraph([FunctionFactor([X(0)], Unit(1), fn)])
        result = levenberg_marquardt(g, Values({X(0): np.array([4.0])}))
        for rec in result.iterations:
            assert rec.error_after <= rec.error_before + 1e-12

    def test_max_iterations_respected(self):
        g = FactorGraph([prior_on_vector(X(0), np.array([1.0]))])
        params = LevenbergParams(max_iterations=1)
        result = levenberg_marquardt(g, Values({X(0): np.zeros(1)}), params)
        assert result.num_iterations == 1
