"""Tests for the Gauss-Newton solver."""

import numpy as np
import pytest

from repro.factorgraph import (
    FactorGraph,
    FunctionFactor,
    Isotropic,
    Unit,
    Values,
    X,
    prior_on_vector,
)
from repro.geometry import Pose
from repro.optim import GaussNewtonParams, gauss_newton, step_norm


def pose_prior(key, target: Pose, sigma=1.0):
    def fn(values):
        return target.local(values.pose(key))

    return FunctionFactor([key], Isotropic(target.dim, sigma), fn)


def pose_between(k1, k2, measured: Pose, sigma=1.0):
    def fn(values):
        predicted = values.pose(k2).ominus(values.pose(k1))
        return measured.local(predicted)

    return FunctionFactor([k1, k2], Isotropic(measured.dim, sigma), fn)


class TestLinearProblems:
    def test_converges_in_one_iteration(self):
        g = FactorGraph([prior_on_vector(X(0), np.array([3.0, -1.0]))])
        result = gauss_newton(g, Values({X(0): np.zeros(2)}))
        assert result.converged
        assert result.iterations[0].error_after == pytest.approx(0.0, abs=1e-18)
        assert np.allclose(result.values.vector(X(0)), [3.0, -1.0])

    def test_respects_max_iterations(self):
        g = FactorGraph([prior_on_vector(X(0), np.array([1.0]))])
        params = GaussNewtonParams(max_iterations=1)
        result = gauss_newton(g, Values({X(0): np.zeros(1)}), params)
        assert result.num_iterations == 1

    def test_explicit_ordering_used(self):
        g = FactorGraph([
            prior_on_vector(X(0), np.array([1.0])),
            prior_on_vector(X(1), np.array([2.0])),
        ])
        v = Values({X(0): np.zeros(1), X(1): np.zeros(1)})
        result = gauss_newton(g, v, ordering=[X(1), X(0)])
        assert np.allclose(result.values.vector(X(1)), [2.0])


class TestNonlinearProblems:
    def test_scalar_quadratic_root(self):
        # f(x) = x^2 - 4 -> minimum of ||f||^2 at x = +-2.
        def fn(values):
            x = values.vector(X(0))[0]
            return np.array([x * x - 4.0])

        g = FactorGraph([FunctionFactor([X(0)], Unit(1), fn)])
        result = gauss_newton(g, Values({X(0): np.array([1.0])}))
        assert result.converged
        assert abs(result.values.vector(X(0))[0]) == pytest.approx(2.0, abs=1e-6)

    def test_pose_chain_recovers_odometry(self):
        rng = np.random.default_rng(0)
        truth = [Pose.identity(3)]
        for _ in range(4):
            truth.append(truth[-1].compose(Pose.random(3, rng, scale=0.5)))

        g = FactorGraph([pose_prior(X(0), truth[0], sigma=1e-3)])
        for i in range(4):
            g.add(pose_between(X(i), X(i + 1), truth[i + 1].ominus(truth[i])))

        noisy = Values()
        noisy.insert(X(0), truth[0])
        for i in range(1, 5):
            noise = 0.1 * rng.standard_normal(6)
            noisy.insert(X(i), truth[i].retract(noise))

        result = gauss_newton(g, noisy)
        assert result.converged
        for i, t in enumerate(truth):
            assert result.values.pose(X(i)).almost_equal(t, tol=1e-5)

    def test_error_monotone_on_well_behaved_problem(self):
        def fn(values):
            x = values.vector(X(0))
            return np.array([np.exp(0.3 * x[0]) - 2.0])

        g = FactorGraph([FunctionFactor([X(0)], Unit(1), fn)])
        result = gauss_newton(g, Values({X(0): np.array([0.0])}))
        errors = [r.error_before for r in result.iterations]
        errors.append(result.final_error)
        assert all(b <= a + 1e-12 for a, b in zip(errors, errors[1:]))


class TestResultObject:
    def test_trace_fields(self):
        g = FactorGraph([prior_on_vector(X(0), np.array([1.0, 1.0]))])
        result = gauss_newton(g, Values({X(0): np.zeros(2)}))
        rec = result.iterations[0]
        assert rec.error_before == pytest.approx(1.0)
        assert rec.improvement == pytest.approx(rec.error_before - rec.error_after)
        assert rec.step_norm == pytest.approx(np.sqrt(2.0))
        assert result.initial_error == pytest.approx(1.0)

    def test_empty_result_nan_errors(self):
        from repro.optim import OptimizationResult

        r = OptimizationResult(values=Values(), converged=False)
        assert np.isnan(r.final_error) and np.isnan(r.initial_error)

    def test_step_norm_helper(self):
        assert step_norm({X(0): np.array([3.0]), X(1): np.array([4.0])}) == (
            pytest.approx(5.0)
        )
