"""Tests for the numeric-health probes (:mod:`repro.optim.probes`)."""

import numpy as np
import pytest

from repro import obs
from repro.factorgraph import FactorGraph, Values, X, prior_on_vector
from repro.optim import gauss_newton, levenberg_marquardt
from repro.optim.probes import record_iteration, record_qr_condition


def drain_counters():
    return dict(obs.collector().drain().counters)


def two_var_graph():
    graph = FactorGraph([
        prior_on_vector(X(0), np.array([3.0, -1.0])),
        prior_on_vector(X(1), np.array([0.5, 2.0])),
    ])
    values = Values({X(0): np.zeros(2), X(1): np.zeros(2)})
    return graph, values


class TestProbePrimitives:
    def test_noop_while_disabled(self):
        assert not obs.is_enabled()
        record_iteration("gn", 1.0, 1.0)
        record_qr_condition(np.array([1.0, 2.0]))
        with obs.enabled_scope():
            assert drain_counters() == {}

    def test_iteration_counters(self):
        with obs.enabled_scope():
            record_iteration("gn", 2.0, 0.5)
            record_iteration("gn", 1.0, 0.25)
            counters = drain_counters()
        assert counters["optim.health.gn.iterations"] == 2
        assert counters["optim.health.gn.residual_sum"] == pytest.approx(3.0)
        assert counters["optim.health.gn.step_norm_sum"] == \
            pytest.approx(0.75)
        assert "optim.health.gn.damping_samples" not in counters

    def test_damping_recorded_in_decades(self):
        with obs.enabled_scope():
            record_iteration("lm", 1.0, 1.0, damping=1e-4)
            record_iteration("lm", 1.0, 1.0, damping=1e-2)
            counters = drain_counters()
        assert counters["optim.health.lm.damping_samples"] == 2
        assert counters["optim.health.lm.damping_log10_sum"] == \
            pytest.approx(-6.0)

    def test_qr_condition_estimate(self):
        with obs.enabled_scope():
            record_qr_condition(np.array([10.0, -1.0]))
            counters = drain_counters()
        assert counters["optim.health.qr.fronts"] == 1
        assert counters["optim.health.qr.log10_cond_sum"] == \
            pytest.approx(1.0)
        assert "optim.health.qr.ill_conditioned" not in counters

    def test_ill_conditioned_front_is_flagged(self):
        with obs.enabled_scope():
            record_qr_condition(np.array([1.0, 1e-9]))
            counters = drain_counters()
        assert counters["optim.health.qr.ill_conditioned"] == 1

    @pytest.mark.parametrize("diagonal", [
        np.array([]), np.array([0.0, 1.0]), np.array([np.inf, 1.0]),
        np.array([np.nan]),
    ])
    def test_degenerate_diagonals(self, diagonal):
        with obs.enabled_scope():
            record_qr_condition(diagonal)
            counters = drain_counters()
        assert counters["optim.health.qr.degenerate"] == 1
        assert "optim.health.qr.log10_cond_sum" not in counters


class TestSolverIntegration:
    def test_gauss_newton_records_health(self):
        graph, values = two_var_graph()
        with obs.enabled_scope():
            result = gauss_newton(graph, values)
            counters = drain_counters()
        assert counters["optim.health.gn.iterations"] == \
            result.num_iterations
        assert counters["optim.health.qr.fronts"] > 0
        assert "optim.health.qr.degenerate" not in counters

    def test_levenberg_records_damping(self):
        graph, values = two_var_graph()
        with obs.enabled_scope():
            result = levenberg_marquardt(graph, values)
            counters = drain_counters()
        assert counters["optim.health.lm.iterations"] == \
            result.num_iterations
        assert counters["optim.health.lm.damping_samples"] == \
            counters["optim.health.lm.iterations"]

    def test_solvers_record_nothing_while_disabled(self):
        graph, values = two_var_graph()
        assert not obs.is_enabled()
        gauss_newton(graph, values)
        with obs.enabled_scope():
            counters = drain_counters()
        assert not any(k.startswith("optim.health.") for k in counters)

    def test_compiled_executor_records_qr_fronts(self):
        from repro.compiler import Executor, compile_graph

        graph, values = two_var_graph()
        compiled = compile_graph(graph, values)
        with obs.enabled_scope():
            Executor().run(compiled.program)
            counters = drain_counters()
        assert counters["optim.health.qr.fronts"] > 0
