"""Solver safeguards: non-finite guards, fallback, budgets, step bounds."""

import numpy as np
import pytest

from repro import obs
from repro.errors import FaultInjectionError, OptimizationError
from repro.factorgraph import FactorGraph, Values, X, prior_on_vector
from repro.optim import (
    GaussNewtonParams,
    LevenbergParams,
    NONFINITE_RAISE,
    SolveBudget,
    clip_delta,
    delta_is_finite,
    gauss_newton,
    levenberg_marquardt,
)
from repro.optim.safeguards import is_finite_scalar


def simple_graph():
    return FactorGraph([prior_on_vector(X(0), np.array([3.0, -1.0]))])


def initial():
    return Values({X(0): np.zeros(2)})


class TestPrimitives:
    def test_is_finite_scalar(self):
        assert is_finite_scalar(1.0)
        assert not is_finite_scalar(float("nan"))
        assert not is_finite_scalar(float("inf"))
        assert not is_finite_scalar(None)

    def test_delta_is_finite(self):
        assert delta_is_finite({X(0): np.ones(3)})
        assert not delta_is_finite({X(0): np.array([1.0, np.nan])})
        assert not delta_is_finite({X(0): np.ones(2),
                                    X(1): np.array([np.inf])})

    def test_clip_delta_scales_down_only_when_over(self):
        delta = {X(0): np.array([3.0, 4.0])}
        clipped = clip_delta(delta, 5.0, 2.5)
        assert np.allclose(clipped[X(0)], [1.5, 2.0])
        assert clip_delta(delta, 5.0, None) is delta
        assert clip_delta(delta, 5.0, 10.0) is delta

    def test_budget_trips_after_deadline(self):
        budget = SolveBudget(1e-9, label="test-solve")
        import time

        time.sleep(0.002)
        with pytest.raises(OptimizationError, match="wall-clock"):
            budget.check(3)
        assert SolveBudget(None).check(0) is None  # never trips

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"),
                                     float("inf")])
    def test_budget_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="positive"):
            SolveBudget(bad)

    def test_deadline_guard_rejects_nonpositive(self):
        from repro.optim.safeguards import DeadlineGuard

        with pytest.raises(ValueError, match="positive"):
            DeadlineGuard(total_s=0.0)
        with pytest.raises(ValueError, match="positive"):
            DeadlineGuard(compile_s=-2.0)
        with pytest.raises(ValueError, match="positive"):
            DeadlineGuard(execute_s=float("nan"))

    def test_deadline_guard_phases(self):
        import time

        from repro.errors import DeadlineExceeded
        from repro.optim.safeguards import DeadlineGuard

        guard = DeadlineGuard()
        assert not guard.armed
        guard.check()  # unarmed guard never trips

        guard = DeadlineGuard(execute_s=1e-9)
        assert guard.armed
        guard.check()  # no phase active: execute deadline dormant
        guard.start_phase("execute")
        time.sleep(0.002)
        with pytest.raises(DeadlineExceeded) as info:
            guard.check(partial={"groups": 7})
        assert info.value.phase == "execute"
        assert info.value.partial == {"groups": 7}
        guard.end_phase()
        guard.check()  # phase over: dormant again

        # Each phase entry restarts the phase clock.
        guard2 = DeadlineGuard(execute_s=10.0)
        guard2.start_phase("execute")
        guard2.check()
        with pytest.raises(ValueError, match="unknown deadline phase"):
            guard2.start_phase("warmup")

    def test_deadline_guard_total_trips_in_any_phase(self):
        import time

        from repro.errors import DeadlineExceeded
        from repro.optim.safeguards import DeadlineGuard

        guard = DeadlineGuard(total_s=1e-9)
        guard.start_phase("compile")
        time.sleep(0.002)
        with pytest.raises(DeadlineExceeded) as info:
            guard.check()
        assert info.value.phase == "total"
        assert info.value.elapsed_s > info.value.deadline_s


class TestGaussNewtonSafeguards:
    def test_defaults_keep_healthy_solves_identical(self):
        # The guarded loop must not perturb a clean trajectory.
        result = gauss_newton(simple_graph(), initial())
        assert result.converged
        assert np.allclose(result.values.vector(X(0)), [3.0, -1.0])

    def test_nan_initial_error_raises_under_raise_mode(self):
        params = GaussNewtonParams(on_nonfinite=NONFINITE_RAISE)
        bad = Values({X(0): np.array([np.nan, 0.0])})
        with pytest.raises(OptimizationError, match="non-finite"):
            gauss_newton(simple_graph(), bad, params)

    def test_nonfinite_delta_falls_back_to_lm(self, monkeypatch):
        import importlib

        gn = importlib.import_module("repro.optim.gauss_newton")

        calls = {"n": 0}
        real = gn.eliminate_and_solve

        def poisoned(linear, order):
            calls["n"] += 1
            delta, stats = real(linear, order)
            if calls["n"] == 1:
                delta = {k: np.full_like(np.asarray(d), np.nan)
                         for k, d in delta.items()}
            return delta, stats

        monkeypatch.setattr(gn, "eliminate_and_solve", poisoned)
        with obs.enabled_scope():
            result = gauss_newton(simple_graph(), initial())
            snap = obs.collector().drain()
        assert result.converged
        assert np.allclose(result.values.vector(X(0)), [3.0, -1.0])
        assert snap.counters["resilience.solver.gn_nonfinite"] == 1
        assert snap.counters["resilience.solver.gn_fallback_lm"] == 1

    def test_escalated_fault_falls_back_to_lm(self, monkeypatch):
        import importlib

        gn = importlib.import_module("repro.optim.gauss_newton")

        calls = {"n": 0}
        real = gn.eliminate_and_solve

        def faulty(linear, order):
            calls["n"] += 1
            if calls["n"] == 1:
                raise FaultInjectionError("unrecoverable value fault")
            return real(linear, order)

        monkeypatch.setattr(gn, "eliminate_and_solve", faulty)
        result = gauss_newton(simple_graph(), initial())
        assert result.converged
        assert np.allclose(result.values.vector(X(0)), [3.0, -1.0])

    def test_raise_mode_propagates_escalation(self, monkeypatch):
        import importlib

        gn = importlib.import_module("repro.optim.gauss_newton")

        def always_faulty(linear, order):
            raise FaultInjectionError("stuck-at fault")

        monkeypatch.setattr(gn, "eliminate_and_solve", always_faulty)
        params = GaussNewtonParams(on_nonfinite=NONFINITE_RAISE)
        with pytest.raises(OptimizationError, match="escalated solve"):
            gauss_newton(simple_graph(), initial(), params)

    def test_step_norm_bound_still_converges(self):
        params = GaussNewtonParams(max_step_norm=0.5)
        result = gauss_newton(simple_graph(), initial(), params)
        assert result.converged
        assert np.allclose(result.values.vector(X(0)), [3.0, -1.0])
        for record in result.iterations:
            assert record.step_norm <= 0.5 + 1e-12

    def test_wall_clock_budget_raises(self):
        params = GaussNewtonParams(max_wall_clock_s=1e-9)
        import time

        time.sleep(0.002)
        with pytest.raises(OptimizationError, match="wall-clock"):
            gauss_newton(simple_graph(), initial(), params)


class TestLevenbergSafeguards:
    def test_nan_current_iterate_raises(self):
        bad = Values({X(0): np.array([np.nan, 0.0])})
        with pytest.raises(OptimizationError, match="non-finite"):
            levenberg_marquardt(simple_graph(), bad)

    def test_nonfinite_trial_rejected_like_ascending_step(
            self, monkeypatch):
        import importlib

        lm = importlib.import_module("repro.optim.levenberg")

        calls = {"n": 0}
        real = lm.eliminate_and_solve

        def poisoned(linear, order):
            calls["n"] += 1
            delta, stats = real(linear, order)
            if calls["n"] == 1:
                delta = {k: np.full_like(np.asarray(d), np.inf)
                         for k, d in delta.items()}
            return delta, stats

        monkeypatch.setattr(lm, "eliminate_and_solve", poisoned)
        with obs.enabled_scope():
            result = levenberg_marquardt(simple_graph(), initial())
            snap = obs.collector().drain()
        assert result.converged
        assert np.allclose(result.values.vector(X(0)), [3.0, -1.0])
        assert snap.counters["resilience.solver.lm_nonfinite_trial"] == 1
        assert snap.counters["optim.lm.rejected_steps"] >= 1

    def test_escalated_fault_escalates_damping_and_recovers(
            self, monkeypatch):
        import importlib

        lm = importlib.import_module("repro.optim.levenberg")

        calls = {"n": 0}
        real = lm.eliminate_and_solve

        def faulty(linear, order):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise FaultInjectionError("transient escalation")
            return real(linear, order)

        monkeypatch.setattr(lm, "eliminate_and_solve", faulty)
        result = levenberg_marquardt(simple_graph(), initial())
        assert result.converged
        assert np.allclose(result.values.vector(X(0)), [3.0, -1.0])

    def test_wall_clock_budget_raises(self):
        params = LevenbergParams(max_wall_clock_s=1e-9)
        import time

        time.sleep(0.002)
        with pytest.raises(OptimizationError, match="wall-clock"):
            levenberg_marquardt(simple_graph(), initial(), params)

    def test_step_norm_bound_still_converges(self):
        params = LevenbergParams(max_step_norm=0.5)
        result = levenberg_marquardt(simple_graph(), initial(), params)
        assert result.converged
        assert np.allclose(result.values.vector(X(0)), [3.0, -1.0])
