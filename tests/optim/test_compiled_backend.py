"""The compiled optimizer backend matches the reference solver.

``backend="compiled"`` routes each linear solve through the compiled
instruction stream (via the compilation cache: one structural compile,
one rebind per iteration).  Both optimizers must converge to the same
error and the same estimates as the reference sparse elimination.
"""

import numpy as np
import pytest

from repro.optim import gauss_newton, levenberg_marquardt
from repro.optim.compiled import CompiledSolver, damped_nonlinear_graph

from tests.diff.util import random_problem


def _values_close(a, b, atol=1e-6):
    from repro.factorgraph.values import local_value

    assert set(a.keys()) == set(b.keys())
    for key in a.keys():
        assert np.allclose(local_value(a.at(key), b.at(key)),
                           0.0, atol=atol), key


@pytest.mark.parametrize("structure_seed", range(4))
def test_gauss_newton_backends_agree(structure_seed):
    graph, values = random_problem(structure_seed, structure_seed + 11)
    ref = gauss_newton(graph, values, backend="reference")
    cmp = gauss_newton(graph, values, backend="compiled")
    assert len(cmp.iterations) == len(ref.iterations)
    assert np.isclose(cmp.final_error, ref.final_error,
                      rtol=1e-8, atol=1e-12)
    _values_close(ref.values, cmp.values)


@pytest.mark.parametrize("structure_seed", range(3))
def test_levenberg_backends_agree(structure_seed):
    graph, values = random_problem(structure_seed, structure_seed + 23)
    ref = levenberg_marquardt(graph, values, backend="reference")
    cmp = levenberg_marquardt(graph, values, backend="compiled")
    assert np.isclose(cmp.final_error, ref.final_error,
                      rtol=1e-6, atol=1e-10)
    _values_close(ref.values, cmp.values)


def test_unknown_backend_rejected():
    graph, values = random_problem(0, 1)
    with pytest.raises(ValueError):
        gauss_newton(graph, values, backend="quantum")
    with pytest.raises(ValueError):
        levenberg_marquardt(graph, values, backend="quantum")


def test_compiled_solver_caches_across_iterations():
    graph, values = random_problem(2, 5)
    solver = CompiledSolver()
    solver.solve(graph, values)
    stepped = values.retract({k: 0.01 * np.ones(values.dim(k))
                              for k in values.keys()})
    solver.solve(graph, stepped)
    stats = solver.cache.stats()
    assert stats["misses"] == 1
    assert stats["hits"] == 1


def test_damped_graph_matches_reference_normal_equations():
    """Damping priors add exactly sqrt(lam)*I rows with zero rhs."""
    graph, values = random_problem(1, 3)
    lam = 0.37
    damped = damped_nonlinear_graph(graph, values, lam)
    assert len(damped.factors) == len(graph.factors) + len(list(values.keys()))
    linear = damped.linearize(values)
    a, b, slices = linear.dense_system()
    base_rows = graph.linearize(values).dense_system()[0].shape[0]
    tail_a, tail_b = a[base_rows:], b[base_rows:]
    total = sum(values.dim(k) for k in values.keys())
    assert tail_a.shape[0] == total
    # Rows are a permutation of sqrt(lam)*I with zero rhs.
    assert np.allclose(tail_b, 0.0, atol=1e-12)
    assert np.allclose(tail_a @ tail_a.T, lam * np.eye(total), atol=1e-10)


def test_levenberg_lambda_trials_share_structure():
    """Different lambda values rebind the same damped-graph template."""
    graph, values = random_problem(3, 8)
    from repro.compiler.cache import structural_fingerprint

    g_small = damped_nonlinear_graph(graph, values, 1e-3)
    g_large = damped_nonlinear_graph(graph, values, 1e2)
    assert structural_fingerprint(g_small, values) \
        == structural_fingerprint(g_large, values)
