"""Shared fixtures for the resilience tests: one small compiled program."""

import numpy as np
import pytest

from repro.compiler import compile_graph
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose


def pose_chain_program(n=5, seed=0):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return compile_graph(graph, values).program


@pytest.fixture(scope="module")
def program():
    return pose_chain_program()


@pytest.fixture(scope="module")
def golden(program):
    from repro.compiler.executor import Executor

    return Executor().run(program)
