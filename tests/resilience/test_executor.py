"""Resilient execution: detection, tiered recovery, and escalation."""

import numpy as np
import pytest

from repro import obs
from repro.compiler.executor import Executor
from repro.compiler.isa import Opcode
from repro.errors import FaultInjectionError
from repro.resilience.executor import ResilientExecutor, execute_with_faults
from repro.resilience.faults import FaultEvent, FaultPlan
from repro.resilience.spec import (
    DETECT_ONLY,
    ESCALATE_CONTINUE,
    RecoveryPolicy,
)


def checked_site(program):
    """Uid of an instruction with an ABFT invariant and live output."""
    from repro.resilience.abft import has_checker

    for instr in program.instructions:
        if has_checker(instr.op) and instr.op is not Opcode.CONST:
            return instr.uid
    raise AssertionError("no checkable instruction")


def dmr_site(program):
    """Uid of an instruction covered only by the DMR fallback."""
    from repro.resilience.abft import has_checker

    for instr in program.instructions:
        if instr.op in (Opcode.LOG, Opcode.EXP, Opcode.JR, Opcode.JRINV):
            assert not has_checker(instr.op)
            return instr.uid
    raise AssertionError("no special-function instruction")


def same_registers(a, b):
    assert a.keys() == b.keys()
    return all(np.array_equal(a[k], b[k]) for k in a)


class TestCleanPath:
    def test_no_plan_matches_plain_executor_bit_exactly(self, program,
                                                        golden):
        registers, stats = execute_with_faults(program, FaultPlan({}))
        assert same_registers(registers, golden)
        assert stats.injected == 0
        assert stats.detected == 0
        assert stats.recovered == 0
        assert stats.escalated == 0


class TestRetryRecovery:
    def test_transient_value_fault_recovered_by_retry(self, program,
                                                      golden):
        uid = checked_site(program)
        plan = FaultPlan({uid: FaultEvent(uid, "value", magnitude=0.5)})
        registers, stats = execute_with_faults(program, plan)
        assert same_registers(registers, golden)
        assert stats.injected == 1
        assert stats.detected == 1
        assert stats.recovered_retry == 1
        assert plan.attempts[uid] == 2

    def test_bitflip_in_exponent_recovered(self, program, golden):
        uid = checked_site(program)
        plan = FaultPlan({uid: FaultEvent(uid, "bitflip", bit=62)})
        registers, stats = execute_with_faults(program, plan)
        assert same_registers(registers, golden)
        assert stats.recovered == 1

    def test_dropped_instruction_reissued(self, program, golden):
        uid = checked_site(program)
        plan = FaultPlan({uid: FaultEvent(uid, "drop")})
        registers, stats = execute_with_faults(program, plan)
        assert same_registers(registers, golden)
        assert stats.detected == 1
        assert stats.recovered_retry == 1

    def test_dmr_fallback_catches_special_function_fault(self, program,
                                                         golden):
        uid = dmr_site(program)
        plan = FaultPlan({uid: FaultEvent(uid, "value", magnitude=0.5)})
        registers, stats = execute_with_faults(program, plan)
        assert same_registers(registers, golden)
        assert stats.dmr_checks > 0
        assert stats.recovered == 1


class TestCheckpointRecovery:
    def test_persistent_fault_recovered_from_checkpoint(self, program,
                                                        golden):
        uid = checked_site(program)
        plan = FaultPlan({uid: FaultEvent(uid, "value", magnitude=0.5,
                                          persistent=True)})
        policy = RecoveryPolicy(checkpoint_every=8)
        registers, stats = execute_with_faults(program, plan, policy)
        assert same_registers(registers, golden)
        assert stats.recovered_checkpoint == 1
        assert stats.checkpoint_restores == 1
        assert uid in plan.suppressed

    def test_persistent_fault_without_checkpoint_escalates(self, program):
        uid = checked_site(program)
        plan = FaultPlan({uid: FaultEvent(uid, "value", magnitude=0.5,
                                          persistent=True)})
        policy = RecoveryPolicy(checkpoint_every=0)
        with pytest.raises(FaultInjectionError) as err:
            execute_with_faults(program, plan, policy)
        assert f"instruction #{uid}" in str(err.value)

    def test_escalate_continue_keeps_corruption_and_counts_it(
            self, program, golden):
        uid = checked_site(program)
        plan = FaultPlan({uid: FaultEvent(uid, "value", magnitude=0.5,
                                          persistent=True)})
        policy = RecoveryPolicy(checkpoint_every=0,
                                escalate=ESCALATE_CONTINUE)
        registers, stats = execute_with_faults(program, plan, policy)
        assert stats.escalated == 1
        assert not same_registers(registers, golden)


class TestDetectOnly:
    def test_detect_only_policy_never_retries(self, program):
        uid = checked_site(program)
        plan = FaultPlan({uid: FaultEvent(uid, "value", magnitude=0.5)})
        registers, stats = execute_with_faults(program, plan, DETECT_ONLY)
        assert registers  # completed despite the corruption
        assert stats.detected == 1
        assert stats.retries == 0
        assert stats.recovered == 0
        assert stats.escalated == 1


class TestObservability:
    def test_counters_exported_when_obs_enabled(self, program):
        uid = checked_site(program)
        plan = FaultPlan({uid: FaultEvent(uid, "value", magnitude=0.5)})
        with obs.enabled_scope():
            execute_with_faults(program, plan)
            snap = obs.collector().drain()
        assert snap.counters["resilience.faults.injected"] == 1
        assert snap.counters["resilience.faults.detected"] == 1
        assert snap.counters["resilience.faults.recovered"] == 1
        assert snap.counters["resilience.abft.checks"] > 0
        assert snap.counters["resilience.executions"] == 1

    def test_stats_dict_shape(self, program):
        _, stats = execute_with_faults(program, FaultPlan({}))
        d = stats.to_dict()
        for key in ("injected", "detected", "recovered", "silent",
                    "retries", "abft_checks", "dmr_checks"):
            assert key in d
