"""Full-rate fault-injection sweep over every application (slow tier)."""

import json

import pytest

from repro.resilience.campaign import full_config, run_campaign

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def sweep():
    return run_campaign(full_config())


class TestFullSweep:
    def test_covers_every_app_and_rate(self, sweep):
        table, _ = sweep
        apps = {r["application"] for r in table.rows}
        rates = {r["rate"] for r in table.rows}
        assert len(apps) == 4
        assert len(rates) == 4

    def test_low_rates_fully_succeed(self, sweep):
        table, _ = sweep
        for row in table.rows:
            if row["rate"] <= 0.01:
                assert row["success_rate"] >= 0.9, row

    def test_aggregate_recovery_exceeds_ninety_percent(self, sweep):
        table, _ = sweep
        injected = sum(r["injected"] for r in table.rows)
        recovered = sum(r["recovered_rate"] * r["injected"]
                        for r in table.rows)
        assert injected > 500
        assert recovered / injected >= 0.9

    def test_overhead_grows_with_rate(self, sweep):
        table, _ = sweep
        for app in {r["application"] for r in table.rows}:
            rows = sorted((r for r in table.rows
                           if r["application"] == app),
                          key=lambda r: r["rate"])
            assert rows[-1]["cycle_overhead"] >= rows[0]["cycle_overhead"]

    def test_sweep_is_deterministic(self, sweep):
        _, document = sweep
        _, again = run_campaign(full_config())
        assert json.dumps(document, sort_keys=True) == \
            json.dumps(again, sort_keys=True)
