"""Supervised solve pipeline: deadlines, retry, ladder, breaker."""

import time

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceeded,
    ExecutionError,
    FaultInjectionError,
    ResilienceError,
)
from repro.factorgraph import FactorGraph, Isotropic, Values, X
from repro.factors import BetweenFactor, PriorFactor
from repro.geometry import Pose
from repro.optim.compiled import CompiledSolver
from repro.resilience.supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    RUNG_FUSED,
    RUNG_INTERPRETER,
    RUNG_REFERENCE,
    SupervisedSolver,
    SupervisorConfig,
    active_supervision,
    disable_supervision,
    enable_supervision,
    ladder_for_backend,
    verify_template_integrity,
)


def pose_problem(n=5, seed=0):
    rng = np.random.default_rng(seed)
    graph = FactorGraph([PriorFactor(X(0), Pose.identity(3),
                                     Isotropic(6, 1e-2))])
    values = Values({X(0): Pose.identity(3)})
    for i in range(n - 1):
        graph.add(BetweenFactor(X(i + 1), X(i),
                                Pose.random(3, rng, scale=0.3)))
        values.insert(X(i + 1), Pose.random(3, rng))
    return graph, values


@pytest.fixture(scope="module")
def problem():
    return pose_problem()


@pytest.fixture(scope="module")
def golden(problem):
    graph, values = problem
    return CompiledSolver().solve(graph, values)


def no_sleep(_):
    pass


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=2)
        for _ in range(2):
            breaker.record_failure("fp")
        assert breaker.state("fp") == BREAKER_CLOSED
        breaker.record_failure("fp")
        assert breaker.state("fp") == BREAKER_OPEN
        assert not breaker.allow("fp")

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=2)
        breaker.record_failure("fp")
        breaker.record_success("fp")
        breaker.record_failure("fp")
        assert breaker.state("fp") == BREAKER_CLOSED

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        breaker.record_failure("fp")
        assert not breaker.allow("fp")  # cooldown tick 1
        assert breaker.allow("fp")      # cooldown expired: half-open probe
        assert breaker.state("fp") == BREAKER_HALF_OPEN
        breaker.record_success("fp")
        assert breaker.state("fp") == BREAKER_CLOSED

    def test_failed_probe_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=1)
        breaker.record_failure("fp")
        assert breaker.allow("fp")  # immediate half-open (cooldown 1)
        breaker.record_failure("fp")
        assert breaker.state("fp") == BREAKER_OPEN

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1, cooldown=8)
        breaker.record_failure("a")
        assert not breaker.allow("a")
        assert breaker.allow("b")


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------

class TestSupervisorConfig:
    def test_rejects_bad_attempts(self):
        with pytest.raises(ResilienceError):
            SupervisorConfig(max_attempts=0)

    def test_rejects_unknown_rungs(self):
        with pytest.raises(ResilienceError, match="unknown ladder"):
            SupervisorConfig(ladder=("gpu",))

    def test_rejects_empty_ladder(self):
        with pytest.raises(ResilienceError):
            SupervisorConfig(ladder=())

    def test_rejects_bad_sentinel_rate(self):
        with pytest.raises(ResilienceError):
            SupervisorConfig(sentinel_rate=1.5)

    def test_ladder_for_backend(self):
        assert ladder_for_backend("fused") == \
            (RUNG_FUSED, RUNG_INTERPRETER, RUNG_REFERENCE)
        assert ladder_for_backend("supervised") == \
            (RUNG_FUSED, RUNG_INTERPRETER, RUNG_REFERENCE)
        assert ladder_for_backend("compiled") == \
            (RUNG_INTERPRETER, RUNG_REFERENCE)
        assert ladder_for_backend("reference") == (RUNG_REFERENCE,)
        with pytest.raises(ValueError):
            ladder_for_backend("gpu")


# ----------------------------------------------------------------------
# The solver: happy path and degradations
# ----------------------------------------------------------------------

class TestSupervisedSolver:
    def test_no_faults_bit_identical_to_unsupervised(self, problem):
        graph, values = problem
        fused = CompiledSolver(executor="fused").solve(graph, values)
        supervised = SupervisedSolver().solve(graph, values)
        assert set(supervised) == set(fused)
        for key in fused:
            assert np.array_equal(supervised[key], fused[key])

    def test_transient_failure_recovers_via_retry(self, problem, golden):
        graph, values = problem
        state = {"raised": False}

        def transient(executor, program, indices):
            if not state["raised"]:
                state["raised"] = True
                raise ExecutionError("injected")

        delays = []
        solver = SupervisedSolver(sleep=delays.append,
                                  injectors={RUNG_FUSED: transient})
        delta = solver.solve(graph, values)
        for key in golden:
            assert np.allclose(delta[key], golden[key], atol=1e-8)
        report = solver.last_report
        assert report["rung"] == RUNG_FUSED
        assert report["attempts"] == 2
        kinds = [e["kind"] for e in report["events"]]
        assert kinds == ["retryable_failure", "retry"]
        assert len(delays) == 1 and delays[0] > 0.0

    def test_persistent_failure_demotes_down_the_ladder(self, problem,
                                                        golden):
        graph, values = problem

        def persistent(executor, program, indices):
            raise ExecutionError("injected")

        solver = SupervisedSolver(sleep=no_sleep,
                                  injectors={RUNG_FUSED: persistent})
        delta = solver.solve(graph, values)
        report = solver.last_report
        assert report["rung"] == RUNG_INTERPRETER
        assert report["demotions"] == 1
        assert "retries_exhausted" in [e["kind"] for e in report["events"]]
        for key in golden:
            assert np.array_equal(delta[key], golden[key])

    def test_every_rung_failing_raises(self, problem):
        graph, values = problem

        def explode(executor, program, indices):
            raise ExecutionError("injected")

        solver = SupervisedSolver(
            config=SupervisorConfig(ladder=(RUNG_FUSED, RUNG_INTERPRETER),
                                    max_attempts=1),
            sleep=no_sleep,
            injectors={RUNG_FUSED: explode, RUNG_INTERPRETER: explode})
        with pytest.raises((FaultInjectionError, ExecutionError)):
            solver.solve(graph, values)
        assert solver.last_report is None  # the solve never completed

    def test_backoff_delays_are_deterministic(self, problem):
        graph, values = problem

        def persistent(executor, program, indices):
            raise ExecutionError("injected")

        def run_once():
            delays = []
            solver = SupervisedSolver(sleep=delays.append,
                                      injectors={RUNG_FUSED: persistent})
            solver.solve(graph, values)
            return delays, solver.last_report

        delays_a, report_a = run_once()
        delays_b, report_b = run_once()
        assert delays_a == delays_b
        assert report_a == report_b
        # Exponential growth: second delay larger than the first.
        assert delays_a[1] > delays_a[0]

    def test_execute_deadline_demotes_instead_of_aborting(self, problem,
                                                          golden):
        graph, values = problem

        def slow(executor, program, indices):
            time.sleep(0.05)

        config = SupervisorConfig(execute_deadline_s=0.01, check_every=1)
        solver = SupervisedSolver(config=config, sleep=no_sleep,
                                  injectors={RUNG_FUSED: slow})
        delta = solver.solve(graph, values)
        report = solver.last_report
        assert report["rung"] == RUNG_INTERPRETER
        kinds = [e["kind"] for e in report["events"]]
        assert "deadline_demotion" in kinds
        for key in golden:
            assert np.array_equal(delta[key], golden[key])

    def test_total_deadline_aborts_with_partial_progress(self, problem):
        graph, values = problem

        def slow(executor, program, indices):
            time.sleep(0.05)

        config = SupervisorConfig(total_deadline_s=0.01)
        solver = SupervisedSolver(config=config, sleep=no_sleep,
                                  injectors={RUNG_FUSED: slow})
        with pytest.raises(DeadlineExceeded) as info:
            solver.solve(graph, values)
        assert info.value.phase == "total"
        assert info.value.partial  # carries instruction-group progress

    def test_nan_storm_demotes(self, problem, golden):
        graph, values = problem

        def storm(executor, program, indices):
            instr = program.instructions[indices[-1]]
            if instr.dsts:
                dst = instr.dsts[0]
                value = np.asarray(executor.registers[dst], dtype=float)
                executor.registers[dst] = np.full_like(value, np.nan)

        solver = SupervisedSolver(sleep=no_sleep,
                                  injectors={RUNG_FUSED: storm})
        delta = solver.solve(graph, values)
        assert solver.last_report["rung"] == RUNG_INTERPRETER
        for key in golden:
            assert np.array_equal(delta[key], golden[key])

    def test_breaker_quarantines_and_reprobes(self, problem, golden):
        graph, values = problem

        def persistent(executor, program, indices):
            raise ExecutionError("injected")

        config = SupervisorConfig(max_attempts=1, breaker_threshold=2,
                                  breaker_cooldown=2)
        solver = SupervisedSolver(config=config, sleep=no_sleep,
                                  injectors={RUNG_FUSED: persistent})
        # Two failing solves open the breaker.
        solver.solve(graph, values)
        solver.solve(graph, values)
        # Quarantined: the fused rung is skipped outright.
        solver.solve(graph, values)
        kinds = [e["kind"] for e in solver.last_report["events"]]
        assert "breaker_open" in kinds
        assert solver.last_report["attempts"] == 1  # interpreter only
        # Cool-down expires (counted in solve requests), the half-open
        # probe runs the fused rung again; with the fault gone it closes.
        solver._injectors.pop(RUNG_FUSED)
        delta = None
        for _ in range(3):
            delta = solver.solve(graph, values)
        assert solver.last_report["rung"] == RUNG_FUSED
        assert solver.breaker.summary()["not_closed"] == []
        for key in golden:
            assert np.array_equal(delta[key], golden[key])

    def test_sentinel_catches_silent_corruption(self, problem, golden):
        from repro.compiler.isa import Opcode

        graph, values = problem

        def corrupt(executor, program, indices):
            for index in indices:
                instr = program.instructions[index]
                if instr.op is Opcode.MM:
                    dst = instr.dsts[0]
                    executor.registers[dst] = 1.5 * np.asarray(
                        executor.registers[dst], dtype=float)
                    return

        config = SupervisorConfig(sentinel=True, sentinel_rate=1.0)
        solver = SupervisedSolver(config=config, sleep=no_sleep,
                                  injectors={RUNG_FUSED: corrupt})
        delta = solver.solve(graph, values)
        kinds = [e["kind"] for e in solver.last_report["events"]]
        assert "sentinel_divergence" in kinds
        assert solver.last_report["rung"] == RUNG_INTERPRETER
        for key in golden:
            assert np.array_equal(delta[key], golden[key])

    def test_poisoned_cache_template_is_evicted(self, problem, golden):
        from repro.compiler.cache import BIND_STATIC
        from repro.compiler.isa import Opcode

        graph, values = problem
        solver = SupervisedSolver(sleep=no_sleep)
        solver.solve(graph, values)  # cold compile
        (entry,) = solver.cache.templates().values()
        poisoned = False
        for instr in entry.compiled.program.instructions:
            if instr.op is Opcode.CONST:
                spec = instr.meta.get("binding")
                if spec is None or spec[0] == BIND_STATIC:
                    value = np.asarray(instr.meta["value"], dtype=float)
                    if value.size:
                        bad = value.copy()
                        bad.flat[0] = np.nan
                        instr.meta["value"] = bad
                        poisoned = True
                        break
        assert poisoned
        assert verify_template_integrity(entry.compiled)
        delta = solver.solve(graph, values)  # rebind detects + recompiles
        kinds = [e["kind"] for e in solver.last_report["events"]]
        assert "cache_eviction" in kinds
        assert solver.cache.stats()["misses"] == 2  # cold + recompile
        for key in golden:
            assert np.array_equal(delta[key], golden[key])

    def test_degradation_report_aggregates(self, problem):
        graph, values = problem
        state = {"raised": False}

        def transient(executor, program, indices):
            if not state["raised"]:
                state["raised"] = True
                raise ExecutionError("injected")

        solver = SupervisedSolver(sleep=no_sleep,
                                  injectors={RUNG_FUSED: transient})
        solver.solve(graph, values)
        solver.solve(graph, values)
        report = solver.degradation_report()
        assert report["solves"] == 2
        assert report["degraded_solves"] == 1
        assert report["events_by_kind"]["retry"] == 1
        assert report["last_solve"]["events"] == []


# ----------------------------------------------------------------------
# Optimizer integration
# ----------------------------------------------------------------------

class TestOptimizerIntegration:
    def test_gauss_newton_supervised_backend(self, problem):
        from repro.optim import gauss_newton

        graph, values = problem
        reference = gauss_newton(graph, values, backend="fused")
        supervised = gauss_newton(graph, values, backend="supervised")
        assert supervised.converged == reference.converged
        for key in reference.values.keys():
            ref, sup = reference.values.at(key), supervised.values.at(key)
            assert np.allclose(ref.phi, sup.phi, atol=1e-8)
            assert np.allclose(ref.t, sup.t, atol=1e-8)
        report = supervised.degradation_report
        assert report is not None and report["degraded_solves"] == 0

    def test_levenberg_supervised_backend(self, problem):
        from repro.optim import levenberg_marquardt

        graph, values = problem
        result = levenberg_marquardt(graph, values, backend="supervised")
        assert result.converged
        assert result.degradation_report is not None

    def test_enable_supervision_routes_any_backend(self, problem):
        from repro.optim import gauss_newton

        graph, values = problem
        plain = gauss_newton(graph, values)
        assert plain.degradation_report is None
        previous = enable_supervision()
        try:
            assert active_supervision() is not None
            supervised = gauss_newton(graph, values)
        finally:
            disable_supervision()
            if previous is not None:  # pragma: no cover - hygiene
                enable_supervision(previous)
        assert active_supervision() is None
        assert supervised.degradation_report is not None
        for key in plain.values.keys():
            ref, sup = plain.values.at(key), supervised.values.at(key)
            assert np.array_equal(ref.phi, sup.phi)
            assert np.array_equal(ref.t, sup.t)

    def test_simulation_result_renders_degradation_report(self):
        from repro.sim.stats import EnergyBreakdown, SimulationResult

        result = SimulationResult(
            policy="ooo", total_cycles=10, clock_mhz=1000.0,
            instruction_count=1, issued_count=1,
            energy=EnergyBreakdown(),
            degradation_report={"solves": 3, "degraded_solves": 1},
        )
        out = result.to_dict()
        assert out["degradation_report"] == {"solves": 3,
                                             "degraded_solves": 1}
        plain = SimulationResult(
            policy="ooo", total_cycles=10, clock_mhz=1000.0,
            instruction_count=1, issued_count=1,
            energy=EnergyBreakdown(),
        )
        assert "degradation_report" not in plain.to_dict()

    def test_supervisor_counters_surface_in_obs(self, problem):
        from repro import obs

        graph, values = problem

        def persistent(executor, program, indices):
            raise ExecutionError("injected")

        with obs.enabled_scope():
            solver = SupervisedSolver(sleep=no_sleep,
                                      injectors={RUNG_FUSED: persistent})
            solver.solve(graph, values)
            snapshot = obs.collector().drain()
        assert snapshot.counters["resilience.supervisor.solves"] == 1
        assert snapshot.counters["resilience.supervisor.retries"] == 2
        assert snapshot.counters["resilience.supervisor.demotions"] == 1
        assert snapshot.counters[
            "resilience.supervisor.degraded_solves"] == 1


# ----------------------------------------------------------------------
# Campaign timeout (satellite: --timeout-s)
# ----------------------------------------------------------------------

class TestCampaignTimeout:
    def test_timeout_validation(self):
        from repro.resilience.campaign import CampaignConfig

        with pytest.raises(ResilienceError, match="timeout_s"):
            CampaignConfig(timeout_s=0.0)
        with pytest.raises(ResilienceError, match="timeout_s"):
            CampaignConfig(timeout_s=-1.0)

    def test_expired_timeout_scores_crash_not_hang(self):
        from repro.optim.safeguards import DeadlineGuard
        from repro.resilience.executor import ResilientExecutor
        from repro.resilience.faults import FaultPlan

        from .conftest import pose_chain_program

        program = pose_chain_program()
        guard = DeadlineGuard(total_s=1e-9, label="trial")
        time.sleep(0.002)
        executor = ResilientExecutor(FaultPlan({}), deadline=guard)
        with pytest.raises(DeadlineExceeded):
            executor.run(program)

    def test_campaign_with_generous_timeout_matches_untimed(self):
        from repro.resilience.campaign import CampaignConfig, run_campaign

        config = CampaignConfig(rates=(0.02,), trials=1,
                                apps=("Manipulator",))
        timed = CampaignConfig(rates=(0.02,), trials=1,
                               apps=("Manipulator",), timeout_s=120.0)
        _, doc_a = run_campaign(config)
        _, doc_b = run_campaign(timed)
        assert doc_a["workloads"] == doc_b["workloads"]
        assert doc_b["campaign"]["timeout_s"] == 120.0
