"""Campaign runner: determinism, document schema, and the CLI."""

import json

import pytest

from repro.errors import ResilienceError
from repro.eval.harness import ExperimentTable
from repro.resilience.campaign import (
    CampaignConfig,
    run_campaign,
    solution_registers,
)
from repro.resilience.spec import CampaignSpec


def tiny_config(**overrides):
    kwargs = dict(rates=(0.02,), trials=2, apps=("Manipulator",))
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


@pytest.fixture(scope="module")
def campaign_result():
    return run_campaign(tiny_config())


class TestCampaign:
    def test_same_config_same_document(self, campaign_result):
        _, document = campaign_result
        _, again = run_campaign(tiny_config())
        assert json.dumps(document, sort_keys=True) == \
            json.dumps(again, sort_keys=True)

    def test_document_is_bench_schema(self, campaign_result, tmp_path):
        from repro.bench.core import BENCH_SCHEMA, load_bench, write_bench

        _, document = campaign_result
        assert document["schema"] == BENCH_SCHEMA
        path = tmp_path / "campaign.json"
        write_bench(path, document)
        assert load_bench(path)["workloads"] == document["workloads"]

    def test_document_diffs_clean_against_itself(self, campaign_result):
        from repro.bench.diff import diff_documents

        _, document = campaign_result
        diff = diff_documents(document, document, exact=True)
        assert not diff["regressions"]

    def test_table_mirrors_workloads(self, campaign_result):
        table, document = campaign_result
        assert len(table.rows) == len(document["workloads"]) == 1
        row = table.rows[0]
        assert row["application"] == "Manipulator"
        assert row["trials"] == 2
        assert 0.0 <= row["success_rate"] <= 1.0
        assert row["cycle_overhead"] >= 1.0

    def test_table_round_trips_through_dict(self, campaign_result):
        table, _ = campaign_result
        again = ExperimentTable.from_dict(table.to_dict())
        assert again.columns == table.columns
        assert again.rows == table.to_dict()["rows"]

    def test_unknown_app_rejected(self):
        with pytest.raises(ResilienceError):
            run_campaign(tiny_config(apps=("Starship",)))

    def test_bad_config_rejected(self):
        with pytest.raises(ResilienceError):
            CampaignConfig(trials=0)
        with pytest.raises(ResilienceError):
            CampaignConfig(rates=())

    def test_solution_registers_are_bsub_outputs(self, program):
        from repro.compiler.isa import Opcode

        names = solution_registers(program)
        bsub_dsts = {d for i in program.instructions
                     if i.op is Opcode.BSUB for d in i.dsts}
        assert set(names) == bsub_dsts
        assert names

    def test_fault_free_campaign_is_all_success(self):
        table, _ = run_campaign(tiny_config(rates=(0.0,), trials=1))
        row = table.rows[0]
        assert row["success_rate"] == 1.0
        assert row["injected"] == 0
        assert row["max_degradation"] == 0.0
        assert row["cycle_overhead"] == 1.0


class TestFleetSection:
    def test_document_embeds_labeled_fleet_series(self, campaign_result):
        _, document = campaign_result
        fleet = document["fleet"]
        assert fleet["schema"] == "repro.obs.fleet/1"
        totals = [e for e in fleet["series"]
                  if e["name"] == "fleet.solve.total"]
        (entry,) = totals
        assert entry["labels"] == {
            "app": "Manipulator", "executor": "resilient",
            "session": "campaign", "stage": "rate=0.02"}
        assert entry["value"] == 2.0  # one per trial
        assert [w["key"] for w in fleet["windows"]] == \
            ["Manipulator/rate=0.02"]

    def test_latency_is_simulated_time_only(self, campaign_result):
        # The campaign's fleet section is byte-compared by the CI
        # determinism gate, so it must carry no host wall-clock series.
        _, document = campaign_result
        units = {e["unit"] for e in document["fleet"]["series"]}
        assert "seconds" not in units
        latency = [e for e in document["fleet"]["series"]
                   if e["name"] == "fleet.solve.sim_latency_s"]
        assert latency and latency[0]["unit"] == "sim_seconds"
        assert latency[0]["sketch"]["count"] == 2

    def test_timeout_records_deadline_outcomes(self):
        _, document = run_campaign(tiny_config(timeout_s=60.0))
        names = {e["name"] for e in document["fleet"]["series"]}
        assert "fleet.solve.deadline_hit" in names

    def test_no_timeout_records_no_deadline_series(self, campaign_result):
        _, document = campaign_result
        names = {e["name"] for e in document["fleet"]["series"]}
        assert "fleet.solve.deadline_hit" not in names
        assert "fleet.solve.deadline_miss" not in names

    def test_slo_cli_passes_on_campaign_document(self, campaign_result,
                                                 tmp_path, capsys):
        from repro.bench.core import write_bench
        from repro.obs.__main__ import main as obs_main

        _, document = campaign_result
        path = tmp_path / "campaign.json"
        write_bench(path, document)
        assert obs_main(["slo", str(path)]) == 0
        assert "OK: all SLO targets met" in capsys.readouterr().out


class TestCli:
    def test_campaign_cli_writes_document(self, tmp_path, capsys):
        from repro.resilience.__main__ import main

        out = tmp_path / "doc.json"
        code = main(["campaign", "--quick", "--apps", "Manipulator",
                     "--trials", "1", "--output", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "Manipulator" in text
        assert json.loads(out.read_text())["mode"] == "campaign"

    def test_campaign_cli_markdown(self, capsys):
        from repro.resilience.__main__ import main

        assert main(["campaign", "--apps", "Manipulator", "--trials",
                     "1", "--markdown"]) == 0
        assert "| application |" in capsys.readouterr().out

    def test_campaign_cli_unknown_app_exits_2(self, capsys):
        from repro.resilience.__main__ import main

        assert main(["campaign", "--apps", "Starship"]) == 2
        assert "repro.resilience" in capsys.readouterr().err

    def test_campaign_cli_custom_spec_flags(self, tmp_path):
        from repro.resilience.__main__ import main

        out = tmp_path / "doc.json"
        code = main(["campaign", "--apps", "Manipulator", "--trials",
                     "1", "--rates", "0.01", "--model", "stall",
                     "--no-dmr", "--retries", "1", "--escalate",
                     "continue", "--output", str(out)])
        assert code == 0
        doc = json.loads(out.read_text())
        spec = CampaignSpec.from_dict(doc["campaign"]["spec"])
        assert spec.fault_model == "stall"
        assert doc["campaign"]["policy"]["max_retries"] == 1
        assert doc["campaign"]["rates"] == [0.01]
