"""ABFT checkers: clean results pass, corrupted results are caught."""

import numpy as np
import pytest

from repro.compiler.executor import Executor
from repro.compiler.isa import Opcode
from repro.resilience.abft import CHECKERS, check_instruction, has_checker

UNCHECKED = (Opcode.LOG, Opcode.EXP, Opcode.SKEW, Opcode.JR,
             Opcode.JRINV, Opcode.EMBED, Opcode.CONST)


def executed_instructions(program):
    """Execute the program, yielding (instruction, executor) pairs."""
    ex = Executor()
    for instr in program.instructions:
        ex.execute(instr)
        yield instr, ex


class TestCleanPasses:
    def test_no_false_alarms_on_clean_execution(self, program):
        checked = 0
        for instr, ex in executed_instructions(program):
            verdict = check_instruction(instr, ex.read)
            if has_checker(instr.op):
                assert verdict is True, instr.describe()
                checked += 1
            else:
                assert verdict is None
        assert checked > 100

    def test_unchecked_opcodes_have_no_checker(self):
        for op in UNCHECKED:
            assert not has_checker(op)


class TestCorruptionDetection:
    @pytest.mark.parametrize("op", sorted(CHECKERS, key=lambda o: o.value))
    def test_detects_corrupted_first_element(self, program, op):
        found = 0
        for instr, ex in executed_instructions(program):
            if instr.op is not op:
                continue
            dst = instr.dsts[0]
            clean = ex.registers[dst]
            if clean.size == 0:
                continue
            corrupt = np.array(clean, copy=True, order="C")
            corrupt.reshape(-1)[0] += 0.5 * (1.0 + abs(
                corrupt.reshape(-1)[0]))
            ex.registers[dst] = corrupt
            assert check_instruction(instr, ex.read) is False, \
                instr.describe()
            ex.registers[dst] = clean
            assert check_instruction(instr, ex.read) is True
            found += 1
            if found >= 3:
                break
        if found == 0:
            pytest.skip(f"program exercises no {op}")

    def test_add_checker_synthetically(self):
        # The pose-chain fixture emits no ADD; exercise its checker on a
        # hand-built instruction over a scratch register file.
        from repro.compiler.isa import Instruction

        regs = {"a": np.arange(6.0).reshape(2, 3),
                "b": np.ones((2, 3)),
                "out": np.arange(6.0).reshape(2, 3) + 1.0}
        instr = Instruction(0, Opcode.ADD, ["a", "b"], ["out"])
        assert check_instruction(instr, regs.__getitem__) is True
        regs["out"] = regs["out"].copy()
        regs["out"][0, 0] += 0.5
        assert check_instruction(instr, regs.__getitem__) is False

    def test_detects_nan_results(self, program):
        for instr, ex in executed_instructions(program):
            if not has_checker(instr.op):
                continue
            dst = instr.dsts[0]
            clean = ex.registers[dst]
            if clean.size == 0:
                continue
            corrupt = np.array(clean, copy=True, order="C")
            corrupt.reshape(-1)[0] = np.nan
            ex.registers[dst] = corrupt
            assert check_instruction(instr, ex.read) is False
            ex.registers[dst] = clean
            break

    def test_dead_subdiagonal_of_bsub_input_is_not_blamed_on_bsub(
            self, program):
        # The triangular solve never reads below the diagonal; a
        # corrupted dead element must not fail the *solve's* check.
        for instr, ex in executed_instructions(program):
            if instr.op is not Opcode.BSUB:
                continue
            frontal = instr.meta["frontal_dim"]
            if frontal < 2:
                continue
            cond_reg = instr.srcs[0]
            clean = ex.registers[cond_reg]
            corrupt = np.array(clean, copy=True)
            corrupt[frontal - 1, 0] += 0.25  # below the diagonal
            ex.registers[cond_reg] = corrupt
            assert check_instruction(instr, ex.read) is True
            ex.registers[cond_reg] = clean
            return
        pytest.skip("no BSUB with frontal_dim >= 2 in this program")
