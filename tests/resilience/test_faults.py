"""Fault planning: determinism, filters, and timing application."""

import numpy as np
import pytest

from repro.compiler.isa import Opcode, UNIT_NONE, UNIT_QR
from repro.errors import ResilienceError
from repro.resilience.faults import (
    DROP_WATCHDOG_CYCLES,
    FaultEvent,
    FaultPlan,
    eligible,
    plan_faults,
)
from repro.resilience.spec import (
    FAULT_DROP,
    FAULT_MIXED,
    FAULT_STALL,
    CampaignSpec,
)


class TestPlanning:
    def test_same_seed_same_schedule(self, program):
        spec = CampaignSpec(rate=0.05, seed=42)
        a = plan_faults(program, spec)
        b = plan_faults(program, spec)
        assert a.events == b.events
        assert len(a) > 0

    def test_different_seeds_differ(self, program):
        a = plan_faults(program, CampaignSpec(rate=0.05, seed=1))
        b = plan_faults(program, CampaignSpec(rate=0.05, seed=2))
        assert a.events != b.events

    def test_zero_rate_plans_nothing(self, program):
        assert len(plan_faults(program, CampaignSpec(rate=0.0))) == 0

    def test_full_rate_strikes_every_eligible_site(self, program):
        spec = CampaignSpec(rate=1.0)
        plan = plan_faults(program, spec)
        expected = sum(1 for i in program.instructions if eligible(i, spec))
        assert len(plan) == expected
        assert expected > 0

    def test_const_and_unitless_never_eligible(self, program):
        plan = plan_faults(program, CampaignSpec(rate=1.0))
        for uid in plan.events:
            instr = program.instructions[uid]
            assert instr.op is not Opcode.CONST
            assert instr.unit != UNIT_NONE

    def test_target_units_filter(self, program):
        spec = CampaignSpec(rate=1.0, target_units=(UNIT_QR,))
        plan = plan_faults(program, spec)
        assert len(plan) > 0
        for uid in plan.events:
            assert program.instructions[uid].unit == UNIT_QR

    def test_target_stages_filter(self, program):
        stages = {i.provenance.stage for i in program.instructions
                  if i.provenance is not None and i.provenance.stage}
        prefix = sorted(stages)[0][:4]
        spec = CampaignSpec(rate=1.0, target_stages=(prefix,))
        plan = plan_faults(program, spec)
        assert len(plan) > 0
        for uid in plan.events:
            prov = program.instructions[uid].provenance
            assert prov is not None and prov.stage.startswith(prefix)

    def test_max_faults_cap(self, program):
        plan = plan_faults(program, CampaignSpec(rate=1.0, max_faults=3))
        assert len(plan) == 3

    def test_mixed_model_draws_multiple_kinds(self, program):
        plan = plan_faults(program,
                           CampaignSpec(rate=1.0, fault_model=FAULT_MIXED))
        kinds = {e.kind for e in plan.events.values()}
        assert len(kinds) >= 3

    def test_bad_specs_rejected(self):
        with pytest.raises(ResilienceError):
            CampaignSpec(rate=1.5)
        with pytest.raises(ResilienceError):
            CampaignSpec(fault_model="gamma-ray")
        with pytest.raises(ResilienceError):
            CampaignSpec(magnitude=0.0)
        with pytest.raises(ResilienceError):
            CampaignSpec(persistent_fraction=-0.1)

    def test_spec_round_trips_through_json_dict(self):
        spec = CampaignSpec(fault_model=FAULT_STALL, rate=0.1, seed=9,
                            target_units=(UNIT_QR,), magnitude=0.2)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec


class TestTimingApplication:
    def _costs(self, uids):
        return {u: 10 for u in uids}, {u: 2.0 for u in uids}

    def test_stall_adds_cycles_but_no_energy(self, program):
        uid = next(i.uid for i in program.instructions
                   if i.unit != UNIT_NONE)
        plan = FaultPlan({uid: FaultEvent(uid, FAULT_STALL,
                                          stall_cycles=16)})
        latencies, energies = self._costs([uid])
        counts = plan.apply_timing(program, latencies, energies)
        assert latencies[uid] == 26
        assert energies[uid] == 2.0
        assert counts["stall_cycles"] == 16

    def test_drop_reissues_and_doubles_energy(self, program):
        uid = next(i.uid for i in program.instructions
                   if i.unit != UNIT_NONE)
        plan = FaultPlan({uid: FaultEvent(uid, FAULT_DROP)})
        latencies, energies = self._costs([uid])
        counts = plan.apply_timing(program, latencies, energies)
        assert latencies[uid] == 10 + 10 + DROP_WATCHDOG_CYCLES
        assert energies[uid] == 4.0
        assert counts["drop_cycles"] == 10 + DROP_WATCHDOG_CYCLES

    def test_value_retries_charge_latency_and_energy(self, program):
        uid = next(i.uid for i in program.instructions
                   if i.unit != UNIT_NONE)
        plan = FaultPlan({uid: FaultEvent(uid, "value")})
        plan.attempts[uid] = 3  # what the value domain recorded
        latencies, energies = self._costs([uid])
        counts = plan.apply_timing(program, latencies, energies)
        assert latencies[uid] == 30
        assert energies[uid] == 6.0
        assert counts["retry_cycles"] == 20

    def test_suppressed_events_still_resolve_to_none(self):
        plan = FaultPlan({7: FaultEvent(7, "value")})
        assert plan.event_for(7) is not None
        plan.suppressed.add(7)
        assert plan.event_for(7) is None
