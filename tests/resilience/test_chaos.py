"""Chaos campaign: verdicts, gates, byte-determinism, CLI exit codes."""

import filecmp
import json

import pytest

from repro.bench.core import load_bench, write_bench
from repro.bench.diff import diff_documents
from repro.errors import ResilienceError
from repro.resilience.chaos import (
    CORRECT_VERDICTS,
    ChaosConfig,
    FAULT_NONE,
    FAULTS,
    ScenarioOutcome,
    VERDICT_IDENTICAL,
    VERDICT_SKIPPED,
    VERDICT_WRONG,
    evaluate_gates,
    run_chaos,
)


def quick_config(**overrides):
    overrides.setdefault("apps", ("MobileRobot",))
    return ChaosConfig(**overrides)


@pytest.fixture(scope="module")
def chaos_result():
    return run_chaos(quick_config())


class TestChaosCampaign:
    def test_controls_are_identical_and_gates_pass(self, chaos_result):
        _, document = chaos_result
        scenarios = document["chaos"]["scenarios"]
        controls = [s for s in scenarios if s["fault"] == FAULT_NONE]
        assert controls
        assert all(s["verdict"] == VERDICT_IDENTICAL for s in controls)
        gates = document["chaos"]["gates"]
        assert gates["passed"]
        assert gates["controls_identical"]
        assert gates["silent_wrong"] == []
        assert gates["correct_rate"] >= 0.95

    def test_every_injected_fault_leaves_an_event_trail(self,
                                                        chaos_result):
        _, document = chaos_result
        for scenario in document["chaos"]["scenarios"]:
            if scenario["fault"] == FAULT_NONE:
                continue
            if scenario["verdict"] == VERDICT_SKIPPED:
                continue
            # No silent anything: a fault either leaves events or the
            # verdict is identical (fault missed the sampled window).
            assert scenario["events"] or \
                scenario["verdict"] == VERDICT_IDENTICAL

    def test_table_covers_the_matrix(self, chaos_result):
        table, document = chaos_result
        config = document["chaos"]["config"]
        expected = (len(config["apps"]) * len(config["executors"])
                    * len(config["faults"]))
        skipped = sum(1 for s in document["chaos"]["scenarios"]
                      if s["verdict"] == VERDICT_SKIPPED)
        assert len(document["chaos"]["scenarios"]) == expected
        assert len(table.rows) == expected - skipped or \
            len(table.rows) == expected

    def test_workloads_carry_verdicts_for_the_bench_gate(self,
                                                         chaos_result):
        _, document = chaos_result
        for key, workload in document["workloads"].items():
            assert workload["verdict"] in (VERDICT_IDENTICAL,
                                           *CORRECT_VERDICTS,
                                           VERDICT_SKIPPED)
            app, executor, fault = key.split("/")
            assert fault in FAULTS

    def test_same_seed_is_byte_identical(self, chaos_result, tmp_path):
        _, first = chaos_result
        _, second = run_chaos(quick_config())
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        write_bench(path_a, first)
        write_bench(path_b, second)
        assert filecmp.cmp(path_a, path_b, shallow=False)
        diff = diff_documents(load_bench(path_a), load_bench(path_b),
                              exact=True)
        assert diff["regressions"] == []

    def test_different_seed_still_passes_gates(self):
        _, document = run_chaos(quick_config(seed=7))
        assert document["chaos"]["gates"]["passed"]

    def test_fleet_section_is_exact_view_only(self, chaos_result):
        # The CI byte-compares two chaos documents, so the embedded
        # fleet section must carry no host wall-clock (seconds) series.
        _, document = chaos_result
        fleet = document["fleet"]
        assert fleet["schema"] == "repro.obs.fleet/1"
        assert all(e["unit"] != "seconds" for e in fleet["series"])
        verdicts = [e for e in fleet["series"]
                    if e["name"] == "fleet.scenario.verdicts"]
        assert verdicts
        assert all(e["labels"].get("session") == "chaos"
                   and {"app", "executor", "fault", "verdict"}
                   <= set(e["labels"]) for e in verdicts)

    def test_config_validation(self):
        with pytest.raises(ResilienceError):
            ChaosConfig(faults=("meteor_strike",))
        with pytest.raises(ResilienceError):
            ChaosConfig(executors=("gpu",))
        with pytest.raises(ResilienceError):
            ChaosConfig(apps=("NotAnApp",))
        with pytest.raises(ResilienceError):
            ChaosConfig(min_correct_rate=1.5)


class TestGateEvaluation:
    @staticmethod
    def outcome(fault, verdict, events=0):
        return ScenarioOutcome(
            app="MobileRobot", executor="fused", fault=fault,
            verdict=verdict, rung="fused", attempts=1, demotions=0,
            events=["x"] * events, error="")

    def test_silent_wrong_fails_the_gate(self):
        outcomes = [self.outcome("nan_storm", VERDICT_WRONG, events=0)]
        gates = evaluate_gates(outcomes)
        assert not gates["silent_wrong_ok"]
        assert gates["silent_wrong"] == ["MobileRobot/fused/nan_storm"]
        assert not gates["passed"]

    def test_loud_wrong_fails_only_the_rate(self):
        outcomes = [self.outcome("nan_storm", VERDICT_WRONG, events=2)]
        gates = evaluate_gates(outcomes)
        assert gates["silent_wrong_ok"]
        assert not gates["correct_rate_ok"]
        assert not gates["passed"]

    def test_non_identical_control_fails(self):
        outcomes = [self.outcome(FAULT_NONE, VERDICT_WRONG, events=0)]
        gates = evaluate_gates(outcomes)
        assert not gates["controls_identical"]
        assert not gates["passed"]

    def test_all_recovered_passes(self):
        outcomes = [
            self.outcome(FAULT_NONE, VERDICT_IDENTICAL),
            self.outcome("nan_storm", "recovered", events=2),
            self.outcome("slow_op", "degraded", events=1),
        ]
        gates = evaluate_gates(outcomes)
        assert gates["passed"]
        assert gates["correct_rate"] == 1.0
        assert gates["injected_scenarios"] == 2

    def test_skipped_scenarios_do_not_count(self):
        outcomes = [self.outcome("silent_corruption", VERDICT_SKIPPED)]
        gates = evaluate_gates(outcomes)
        assert gates["injected_scenarios"] == 0
        assert gates["passed"]


class TestChaosCli:
    def test_cli_passes_and_writes_bench(self, tmp_path, capsys):
        from repro.resilience.__main__ import main

        out = tmp_path / "chaos.json"
        code = main(["chaos", "--apps", "MobileRobot",
                     "--output", str(out)])
        captured = capsys.readouterr()
        assert code == 0
        assert "gates:" in captured.out
        document = load_bench(out)
        assert document["mode"] == "chaos"
        assert document["chaos"]["gates"]["passed"]

    def test_cli_rejects_unknown_fault(self, capsys):
        from repro.resilience.__main__ import main

        code = main(["chaos", "--apps", "MobileRobot",
                     "--faults", "meteor_strike"])
        assert code == 2

    def test_cli_seed_reruns_byte_identical(self, tmp_path):
        from repro.resilience.__main__ import main

        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(["chaos", "--apps", "MobileRobot", "--seed", "3",
                     "--output", str(out_a)]) == 0
        assert main(["chaos", "--apps", "MobileRobot", "--seed", "3",
                     "--output", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()


@pytest.mark.slow
class TestChaosSoak:
    def test_full_matrix_all_gates_pass(self):
        table, document = run_chaos(ChaosConfig())
        gates = document["chaos"]["gates"]
        assert gates["passed"], json.dumps(gates, indent=1)
        assert gates["controls_identical"]
        assert gates["silent_wrong"] == []
        # 4 apps x 2 executor tops x 7 faults
        assert len(document["chaos"]["scenarios"]) == 56
